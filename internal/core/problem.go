// Package core implements the paper's contribution: the cluster-wide
// context switch engine. Given the current configuration and the vjob
// states a decision module asks for, the engine searches — with the
// constraint-programming model of §4.3 — for a viable destination
// configuration whose reconfiguration plan is as cheap as possible,
// then emits that plan. The package also provides the First-Fit-
// Decrease baseline planner the paper compares against (§5.1) and the
// Entropy control loop (§3.1): observe, decide, plan, execute.
package core

import (
	"fmt"

	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// Problem is one reconfiguration request: the current configuration
// and the state each vjob must reach. VMs whose vjob is absent from
// Target keep their current state (the keepVMState constraint); the
// solver may still migrate running VMs to make room.
type Problem struct {
	// Src is the observed configuration.
	Src *vjob.Configuration
	// Target maps vjob names to the state the decision module wants
	// (mustBeRunning / mustBeReady / terminated).
	Target map[string]vjob.State
	// Rules are administrator placement constraints (Spread, Ban,
	// Fence, Gather) maintained during the optimization (§7).
	Rules []PlacementRule
}

// vmGoal is the per-VM compilation of the problem.
type vmGoal struct {
	vm   *vjob.VM
	cur  vjob.State
	want vjob.State
	// curLoc is the hosting node (running) or image node (sleeping).
	curLoc string
}

// compile expands the per-vjob targets into per-VM goals and validates
// them against the life cycle.
func (p Problem) compile() ([]vmGoal, error) {
	goals := make([]vmGoal, 0, p.Src.NumVMs())
	for _, v := range p.Src.VMs() {
		cur := p.Src.StateOf(v.Name)
		want, ok := p.Target[v.VJob]
		if !ok {
			want = cur
		}
		// A vjob can be in a transiently mixed state (e.g. partially
		// placed). Per-VM, a target that is a no-op for the VM's own
		// state is coerced rather than rejected: a waiting VM of a
		// vjob sent to Sleeping has nothing to suspend.
		if want == vjob.Sleeping && cur == vjob.Waiting {
			want = vjob.Waiting
		}
		if !vjob.ValidTransition(cur, want) {
			return nil, fmt.Errorf("core: vjob %s: VM %s cannot go %v -> %v", v.VJob, v.Name, cur, want)
		}
		goals = append(goals, vmGoal{vm: v, cur: cur, want: want, curLoc: p.Src.LocationOf(v.Name)})
	}
	return goals, nil
}

// runContribution returns the plan-cost contribution (Table 1, with
// Dm widened to plan.TransferSize) of hosting the VM of g on node when
// the target state is Running: 0 to stay or boot, TransferSize to
// migrate, TransferSize to resume locally, 2·TransferSize to resume
// remotely. Mirroring the Action.Cost() fold keeps the bound tight;
// on 2-D instances TransferSize is exactly Dm.
func (g vmGoal) runContribution(node string) int {
	switch g.cur {
	case vjob.Running:
		if node == g.curLoc {
			return 0
		}
		return plan.TransferSize(g.vm)
	case vjob.Sleeping:
		if node == g.curLoc {
			return plan.TransferSize(g.vm)
		}
		return 2 * plan.TransferSize(g.vm)
	default: // waiting: a run action
		return 0
	}
}

// fixedCost returns the cost the goal incurs regardless of placement
// (suspends of running VMs headed to Sleeping). Stops are free.
func (g vmGoal) fixedCost() int {
	if g.want == vjob.Sleeping && g.cur == vjob.Running {
		return plan.TransferSize(g.vm)
	}
	return 0
}

// costModel evaluates placement contributions including the §4.2
// sequencing delays: a VM sent to a node where it does not fit right
// now must wait for at least one release there, so its total cost is
// raised by the cheapest release cost of that node. The estimate stays
// a lower bound of the true plan cost (the actual delay is the cost of
// every preceding pool), which keeps the branch-and-bound admissible
// while steering the search towards nodes that are free immediately —
// the paper's "perform actions as early as possible".
type costModel struct {
	// free caches the source configuration's per-node free capacities,
	// every dimension at once: contribution runs in the propagator's
	// inner loop and cannot afford configuration scans.
	free map[string]resources.Vector
	// minRelease[node] is the cheapest cost among the actions that
	// liberate resources on the node (0 when a hosted VM is being
	// stopped; Dm for a suspend or an outbound migration); missing
	// entries mean no release is possible.
	minRelease map[string]int
}

func newCostModel(src *vjob.Configuration, goals []vmGoal) *costModel {
	m := &costModel{
		free:       src.FreeResources(),
		minRelease: make(map[string]int),
	}
	for _, g := range goals {
		if g.cur != vjob.Running {
			continue
		}
		var rel int
		switch g.want {
		case vjob.Terminated:
			rel = 0 // stop
		default:
			rel = plan.TransferSize(g.vm) // suspend or migration away
		}
		if cur, ok := m.minRelease[g.curLoc]; !ok || rel < cur {
			m.minRelease[g.curLoc] = rel
		}
	}
	return m
}

// contribution returns the placement cost of hosting g's VM on node:
// the Table 1 action cost plus the sequencing delay bound.
func (m *costModel) contribution(g vmGoal, node string) int {
	c := g.runContribution(node)
	if g.cur == vjob.Running && node == g.curLoc {
		return c // staying put: no action, no delay
	}
	if g.vm.Demand.Fits(m.free[node]) {
		return c // fits immediately: the action can start in pool 0
	}
	if rel, ok := m.minRelease[node]; ok {
		return c + rel
	}
	return c
}

// Satisfied reports whether the problem needs no reconfiguration at
// all: the source is viable, every rule holds, and every VM already
// sits in its (coerced) target state. For a satisfied problem the
// optimal plan is provably empty — staying put has cost 0, the
// minimum — so callers can skip the solver outright; the event-driven
// loop uses this to discharge clean slices without burning budget.
func (p Problem) Satisfied() bool {
	if !p.Src.Viable() {
		return false
	}
	for _, r := range p.Rules {
		if r.Check(p.Src) != nil {
			return false
		}
	}
	for _, v := range p.Src.VMs() {
		want, ok := p.Target[v.VJob]
		if !ok {
			continue
		}
		cur := p.Src.StateOf(v.Name)
		if want == vjob.Sleeping && cur == vjob.Waiting {
			continue // the compile-time coercion: nothing to suspend
		}
		if cur != want {
			return false
		}
	}
	return true
}

// Result is the outcome of an optimization: the destination
// configuration, its reconfiguration plan and cost, plus solver
// telemetry.
type Result struct {
	// Dst is the viable destination configuration.
	Dst *vjob.Configuration
	// Plan realizes Src -> Dst.
	Plan *plan.Plan
	// Cost is the plan cost under the §4.2 model.
	Cost int
	// LowerBound is the solver's admissible lower bound on the cost of
	// any plan for the chosen target states. With Partitions > 1 it is
	// the sum of the per-slice bounds — a bound on plans that respect
	// the decomposition, not on the global problem (a cross-partition
	// migration the slices never consider may be cheaper), so do not
	// read cost-vs-bound as a global optimality gap there.
	LowerBound int
	// Optimal is true when the solver proved no cheaper configuration
	// exists (with respect to its bound) before the timeout.
	Optimal bool
	// Solutions counts the improving configurations found.
	Solutions int
	// Nodes and Fails are search counters.
	Nodes, Fails int64
	// Partitions is how many node-disjoint sub-problems were solved
	// concurrently to produce this result; 0 or 1 means the monolithic
	// model. With Partitions > 1, Optimal means every partition proved
	// its slice optimal — the merged plan is not necessarily a global
	// optimum, since cross-partition migrations were never considered.
	Partitions int
	// Winner names the strategy that produced the returned plan:
	// "base", "knapsack", "firstfail", "prefer" or "shuffle#N" for a
	// portfolio worker; "warm-seed" / "ffd-seed" when no worker beat
	// the seed. On a partitioned solve it is the most frequent
	// per-partition winner.
	Winner string
	// WarmHit reports that the WarmStart assignment was still viable
	// for this problem and seeded the incumbent (whether a warm start
	// was offered at all is the caller's knowledge: Optimizer.WarmStart
	// != nil).
	WarmHit bool
	// Outcomes are the per-portfolio-worker search outcomes, strategy-
	// sorted. A sequential solve reports one "base" entry; a
	// partitioned solve merges per-partition outcomes by strategy.
	Outcomes []WorkerOutcome
	// Trajectory is the incumbent-bound trajectory: one point per
	// improving solution, offset in wall seconds from the solve start.
	// Empty on partitioned solves.
	Trajectory []BoundPoint
}
