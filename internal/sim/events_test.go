package sim

import (
	"errors"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

func eventCluster(t *testing.T) (*Cluster, *vjob.Configuration, *vjob.VM) {
	t.Helper()
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n1", 2, 4096))
	cfg.AddNode(vjob.NewNode("n2", 2, 4096))
	v := vjob.NewVM("v1", "j1", 1, 1024)
	cfg.AddVM(v)
	if err := cfg.SetRunning("v1", "n1"); err != nil {
		t.Fatal(err)
	}
	return New(cfg, duration.Default()), cfg, v
}

func TestOnLoadChangeFiresOnPhaseShift(t *testing.T) {
	c, cfg, _ := eventCluster(t)
	var got []string
	c.OnLoadChange(func(vm string) { got = append(got, vm) })
	// Two phases with different CPU demands, then completion.
	c.SetWorkload("v1", []Phase{{CPU: 1, Seconds: 10}, {CPU: 0, Seconds: 5}})
	c.Run(100)
	// Phase 1 -> 2 changes demand (1 -> 0): one event; completion of
	// phase 2 keeps demand 0 but sets done: a second event.
	if len(got) != 2 {
		t.Fatalf("load-change events = %v, want 2", got)
	}
	if cfg.VM("v1").CPUDemand() != 0 {
		t.Fatalf("demand = %d after completion", cfg.VM("v1").CPUDemand())
	}
	if !c.WorkloadDone("v1") {
		t.Fatal("workload not done")
	}
}

func TestOnLoadChangeSilentOnEqualDemand(t *testing.T) {
	c, _, _ := eventCluster(t)
	events := 0
	c.OnLoadChange(func(string) { events++ })
	// Two phases with identical demand: only the completion notifies.
	c.SetWorkload("v1", []Phase{{CPU: 1, Seconds: 5}, {CPU: 1, Seconds: 5}})
	c.Run(100)
	if events != 1 {
		t.Fatalf("events = %d, want only the completion", events)
	}
}

func TestFailActionLeavesConfigurationUntouched(t *testing.T) {
	c, cfg, v := eventCluster(t)
	boom := errors.New("hypervisor rejected the migration")
	c.FailAction = func(a plan.Action) error {
		if a.VM().Name == "v1" {
			return boom
		}
		return nil
	}
	var got error
	called := false
	c.StartAction(&plan.Migration{Machine: v, Src: "n1", Dst: "n2"}, func(err error) {
		called = true
		got = err
	})
	c.Run(10_000)
	if !called {
		t.Fatal("done callback never fired")
	}
	if !errors.Is(got, boom) {
		t.Fatalf("err = %v, want injected failure", got)
	}
	if cfg.HostOf("v1") != "n1" {
		t.Fatalf("failed migration moved the VM to %s", cfg.HostOf("v1"))
	}
	if n := c.ActionCounts()["migrate"]; n != 0 {
		t.Fatalf("failed action counted as run: %d", n)
	}
}

func TestFailedSuspendThawsWorkload(t *testing.T) {
	c, cfg, v := eventCluster(t)
	c.SetWorkload("v1", []Phase{{CPU: 1, Seconds: 30}})
	c.FailAction = func(a plan.Action) error { return errors.New("suspend failed") }
	c.StartAction(&plan.Suspend{Machine: v, On: "n1", To: "n1"}, nil)
	c.Run(10_000)
	if cfg.StateOf("v1") != vjob.Running {
		t.Fatalf("state = %v after failed suspend", cfg.StateOf("v1"))
	}
	if !c.WorkloadDone("v1") {
		t.Fatal("workload stayed frozen after the failed suspend")
	}
}
