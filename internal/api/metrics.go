package api

import (
	"fmt"
	"net/http"
	"strings"

	"cwcs/internal/obs"
	"cwcs/internal/resources"
)

// sample is one exposition line of a family: an optional rendered
// label set (`{a="b"}`) and the value.
type sample struct {
	labels string
	value  float64
}

// family is one metric family: HELP/TYPE plus its samples, emitted
// consecutively as the text exposition format requires. A family may
// mix label shapes — cwcs_violation_seconds_total carries the
// unlabeled aggregate integral and the ledger's {vjob,kind} /
// {node,kind} attribution series in one block.
type family struct {
	name, help, typ string
	samples         []sample
}

// labels renders one label set in registry order.
func labels(pairs ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// metricFamilies assembles every non-histogram family the server
// exports. This is the metrics registry: handleMetrics renders
// exactly this list (plus the tracer histograms) and the exposition
// well-formedness test iterates it, so a new family cannot ship
// unrendered or untested.
func (s *Server) metricFamilies() []family {
	snap := s.snapshot()
	executing := 0.0
	if snap.Executing {
		executing = 1
	}
	one := func(name, help, typ string, v float64) family {
		return family{name: name, help: help, typ: typ, samples: []sample{{value: v}}}
	}
	violations := one("cwcs_violation_seconds_total", "Integral of capacity violations over virtual time; labeled series attribute it per vjob and per node by dominant consumer.", "counter", snap.ViolationSeconds)
	if s.Ledger != nil {
		for _, e := range s.Ledger.VJobKinds() {
			violations.samples = append(violations.samples, sample{labels: labels("vjob", e.VJob, "kind", e.Kind), value: e.Seconds})
		}
		for _, e := range s.Ledger.NodeKinds() {
			violations.samples = append(violations.samples, sample{labels: labels("node", e.Node, "kind", e.Kind), value: e.Seconds})
		}
	}
	fams := []family{
		one("cwcs_iterations_total", "Wake-ups that ran the decision module.", "counter", float64(snap.Loop.Iterations)),
		one("cwcs_solves_total", "Optimizer invocations (monolithic solves plus dirty-slice solves).", "counter", float64(snap.Loop.SolverCalls)),
		one("cwcs_sub_solves_total", "Independent sub-problem optimizations, the comparable solve unit.", "counter", float64(snap.Loop.SubSolves)),
		one("cwcs_slice_solves_total", "Solver invocations restricted to a dirty partition slice.", "counter", float64(snap.Loop.SliceSolves)),
		one("cwcs_full_solves_total", "Incremental iterations that fell back to the monolithic model.", "counter", float64(snap.Loop.FullSolves)),
		one("cwcs_repairs_total", "In-flight plan repairs spliced successfully.", "counter", float64(snap.Loop.Repairs)),
		one("cwcs_failed_repairs_total", "Repair attempts that fell back to a full re-solve.", "counter", float64(snap.Loop.FailedRepairs)),
		one("cwcs_widened_repairs_total", "Spliced repairs that needed region widening over a broken dependency chain.", "counter", float64(snap.Loop.WidenedRepairs)),
		one("cwcs_repair_expansions_total", "Region-widening steps across all repairs (depth = expansions/widened).", "counter", float64(snap.Loop.RepairExpansions)),
		one("cwcs_events_total", "Cluster events received by the loop.", "counter", float64(snap.Loop.Events)),
		one("cwcs_events_coalesced_total", "Events absorbed into an armed wake-up or in-flight execution.", "counter", float64(snap.Loop.Coalesced)),
		one("cwcs_partition_reuses_total", "Wake-ups that reused the cached partition carve.", "counter", float64(snap.Loop.PartitionReuses)),
		one("cwcs_switches_total", "Executed cluster-wide context switches.", "counter", float64(snap.Switches)),
		violations,
		one("cwcs_queue_depth", "VJobs in the submission queue.", "gauge", float64(snap.QueueDepth)),
		one("cwcs_draining_nodes", "Nodes currently under a drain order.", "gauge", float64(len(snap.DrainingNodes))),
		one("cwcs_executing", "1 while a context switch is executing.", "gauge", executing),
		one("cwcs_virtual_time_seconds", "Current virtual time of the cluster.", "gauge", snap.Now),
	}
	if s.Ledger != nil {
		breach := family{name: "cwcs_rule_breach_seconds_total", help: "Integral of structural placement-rule breaches over virtual time, per rule kind.", typ: "counter"}
		for _, e := range s.Ledger.RuleSeconds() {
			breach.samples = append(breach.samples, sample{labels: labels("rule", e.Rule), value: e.Seconds})
		}
		fams = append(fams, breach)
	}
	if s.Solver != nil {
		solver := s.Solver.Snapshot()
		wins := family{name: "cwcs_portfolio_wins_total", help: "Solves won per portfolio strategy (the strategy whose plan was returned).", typ: "counter"}
		for _, w := range s.Solver.WinRates() {
			wins.samples = append(wins.samples, sample{labels: labels("strategy", w.Strategy), value: float64(w.Improvements)})
		}
		fams = append(fams,
			wins,
			one("cwcs_warm_start_hits_total", "Solves whose warm-start assignment was still viable and seeded the incumbent.", "counter", float64(solver.WarmStartHits)),
			one("cwcs_warm_start_misses_total", "Solves whose warm-start assignment no longer applied.", "counter", float64(solver.WarmStartMisses)),
		)
	}
	if s.Config != nil {
		gauges := s.nodeGauges()
		used := family{name: "cwcs_node_resource_used", help: "Per-node per-dimension resource demand of running VMs.", typ: "gauge"}
		capacity := family{name: "cwcs_node_resource_capacity", help: "Per-node per-dimension resource capacity.", typ: "gauge"}
		for _, g := range gauges {
			l := labels("node", g.node, "kind", g.kind)
			used.samples = append(used.samples, sample{labels: l, value: g.used})
			capacity.samples = append(capacity.samples, sample{labels: l, value: g.capacity})
		}
		fams = append(fams, used, capacity)
	}
	info := obs.BuildInfo()
	fams = append(fams, family{
		name: "cwcs_build_info", help: "Build metadata of the serving binary; the value is always 1.", typ: "gauge",
		samples: []sample{{labels: labels("version", info.Version, "go_version", info.GoVersion), value: 1}},
	})
	if s.Trace != nil {
		fams = append(fams, one("cwcs_watch_drops_total", "Watch events dropped (and subscribers disconnected) because a client fell behind.", "counter", float64(s.Trace.WatchDrops())))
	}
	fams = append(fams, one("cwcs_state_watch_drops_total", "State-watch subscribers disconnected because a client fell behind.", "counter", float64(s.stateDrops.Load())))
	return fams
}

// nodeGauge is one labeled sample of the per-node resource gauges.
type nodeGauge struct {
	node, kind     string
	used, capacity float64
}

// nodeGauges walks the configuration once under Exec and returns one
// sample per node and per dimension the node offers (or over-uses), in
// node then registry order.
func (s *Server) nodeGauges() []nodeGauge {
	var out []nodeGauge
	s.exec(func() {
		cfg := s.Config()
		load := loadByNode(cfg)
		for _, n := range cfg.Nodes() {
			var used resources.Vector
			if ld := load[n.Name]; ld != nil {
				used = ld.used
			}
			for _, k := range resources.Kinds() {
				if n.Capacity.Get(k) == 0 && used.Get(k) == 0 {
					continue
				}
				out = append(out, nodeGauge{
					node: n.Name, kind: k.String(),
					used: float64(used.Get(k)), capacity: float64(n.Capacity.Get(k)),
				})
			}
		}
	})
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.Stats == nil {
		writeError(w, http.StatusNotImplemented, "no stats source")
		return
	}
	var b strings.Builder
	for _, f := range s.metricFamilies() {
		if len(f.samples) == 0 {
			// A purely-labeled family with no series yet (e.g. no rule
			// ever breached) is withheld rather than emitting orphan
			// HELP/TYPE headers.
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, smp := range f.samples {
			fmt.Fprintf(&b, "%s%s %g\n", f.name, smp.labels, smp.value)
		}
	}
	if s.Trace != nil {
		writeHistograms(&b, s.Trace.Histograms())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
