package monitor

import (
	"strings"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

func testCluster(t *testing.T) *sim.Cluster {
	t.Helper()
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n00", 2, 4096))
	cfg.AddNode(vjob.NewNode("n01", 2, 4096))
	return sim.New(cfg, duration.Default())
}

func TestObserve(t *testing.T) {
	c := testCluster(t)
	cfg := c.Config()
	cfg.AddVM(vjob.NewVM("a", "j", 1, 1024))
	cfg.AddVM(vjob.NewVM("b", "j", 1, 2048))
	cfg.AddVM(vjob.NewVM("c", "j", 1, 512))
	if err := cfg.SetRunning("a", "n00"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetRunning("b", "n01"); err != nil {
		t.Fatal(err)
	}
	if err := cfg.SetSleeping("c", "n00"); err != nil {
		t.Fatal(err)
	}
	s := Observe(42, cfg)
	if s.T != 42 {
		t.Fatalf("T = %v", s.T)
	}
	if s.UsedCPU != 2 || s.CapCPU != 4 {
		t.Fatalf("cpu = %d/%d", s.UsedCPU, s.CapCPU)
	}
	if s.UsedMem != 3072 || s.CapMem != 8192 {
		t.Fatalf("mem = %d/%d", s.UsedMem, s.CapMem)
	}
	if s.CPUPercent() != 50 {
		t.Fatalf("cpu%% = %v", s.CPUPercent())
	}
	if s.MemGiB() != 3 {
		t.Fatalf("memGiB = %v", s.MemGiB())
	}
	if s.Running != 2 || s.Sleeping != 1 || s.Waiting != 0 {
		t.Fatalf("states = %d/%d/%d", s.Running, s.Sleeping, s.Waiting)
	}
}

func TestZeroCapacity(t *testing.T) {
	s := Observe(0, vjob.NewConfiguration())
	if s.CPUPercent() != 0 {
		t.Fatal("division by zero capacity")
	}
}

func TestRecorderSamplesPeriodically(t *testing.T) {
	c := testCluster(t)
	cfg := c.Config()
	cfg.AddVM(vjob.NewVM("a", "j", 1, 1024))
	if err := cfg.SetRunning("a", "n00"); err != nil {
		t.Fatal(err)
	}
	c.SetWorkload("a", []sim.Phase{{CPU: 1, Seconds: 35}})
	r := &Recorder{Interval: 10}
	r.Attach(c)
	c.Run(45)
	// Samples at t=0,10,20,30,40.
	if len(r.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(r.Samples))
	}
	// After the workload finishes at t=35, demand drops to zero.
	if r.Samples[3].UsedCPU != 1 {
		t.Fatalf("t=30 cpu = %d, want 1", r.Samples[3].UsedCPU)
	}
	if r.Samples[4].UsedCPU != 0 {
		t.Fatalf("t=40 cpu = %d, want 0 (workload done)", r.Samples[4].UsedCPU)
	}
	r.Stop()
	c.Run(100)
	if len(r.Samples) != 5 {
		t.Fatal("recorder kept sampling after Stop")
	}
}

func TestRecorderDefaultInterval(t *testing.T) {
	c := testCluster(t)
	r := &Recorder{}
	r.Attach(c)
	if r.Interval != 10 {
		t.Fatalf("default interval = %v, want 10", r.Interval)
	}
	r.Stop()
}

func TestCSVAndMean(t *testing.T) {
	r := &Recorder{Samples: []Sample{
		{T: 0, UsedCPU: 2, CapCPU: 4, UsedMem: 1024, CapMem: 8192, Running: 2},
		{T: 10, UsedCPU: 4, CapCPU: 4, UsedMem: 2048, CapMem: 8192, Running: 4},
	}}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "t_sec,") {
		t.Fatal("missing header")
	}
	if !strings.Contains(csv, "10,4,4,100.0") {
		t.Fatalf("csv = %q", csv)
	}
	if got := r.MeanCPUPercent(0); got != 75 {
		t.Fatalf("mean = %v, want 75", got)
	}
	if got := r.MeanCPUPercent(5); got != 50 {
		t.Fatalf("mean(until 5) = %v, want 50", got)
	}
	empty := &Recorder{}
	if empty.MeanCPUPercent(0) != 0 {
		t.Fatal("mean of no samples")
	}
}
