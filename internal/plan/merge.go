package plan

import (
	"errors"
	"fmt"

	"cwcs/internal/vjob"
)

// ErrOverlappingPlans is returned by Merge when two input plans touch a
// common node or VM: merging them could make a pool infeasible, so the
// union is refused.
var ErrOverlappingPlans = errors.New("plan: merged plans are not node/VM disjoint")

// Merge unions reconfiguration plans computed over disjoint slices of
// the cluster into one plan rooted at src: pool i of the merged plan is
// the union of pool i of every input. Because the inputs touch disjoint
// node and VM sets (which Merge verifies), every action stays feasible
// at its pool start and the merged plan reaches the union of the
// per-partition destinations — the feasibility argument of each input
// carries over unchanged.
//
// The §4.2 cost of the merged plan is conservative: pools act as
// synchronization barriers, so an action of a short partition inherits
// the elapsed time of the longest sibling pools. The true concurrent
// execution can only be faster; callers comparing costs across
// partition counts should keep that bias in mind.
func Merge(src *vjob.Configuration, plans ...*Plan) (*Plan, error) {
	out := &Plan{Src: src}
	seenNodes := make(map[string]int)
	seenVMs := make(map[string]int)
	for i, p := range plans {
		if p == nil {
			return nil, fmt.Errorf("plan: merge of a nil plan (input %d)", i)
		}
		out.Bypass += p.Bypass
		for _, pool := range p.Pools {
			for _, a := range pool {
				for _, n := range touchedNodes(a) {
					if prev, ok := seenNodes[n]; ok && prev != i {
						return nil, fmt.Errorf("%w: node %s in plans %d and %d", ErrOverlappingPlans, n, prev, i)
					}
					seenNodes[n] = i
				}
				name := a.VM().Name
				if prev, ok := seenVMs[name]; ok && prev != i {
					return nil, fmt.Errorf("%w: VM %s in plans %d and %d", ErrOverlappingPlans, name, prev, i)
				}
				seenVMs[name] = i
			}
		}
		if len(p.Pools) > len(out.Pools) {
			out.Pools = append(out.Pools, make([]Pool, len(p.Pools)-len(out.Pools))...)
		}
		for j, pool := range p.Pools {
			out.Pools[j] = append(out.Pools[j], pool...)
		}
	}
	for _, pool := range out.Pools {
		pool.sortDeterministic()
	}
	// Inputs may have had trailing empty pools dropped unevenly; keep
	// the merged plan free of empty pools too.
	pools := out.Pools[:0]
	for _, pool := range out.Pools {
		if len(pool) > 0 {
			pools = append(pools, pool)
		}
	}
	out.Pools = pools
	return out, nil
}

// touchedNodes lists every node an action reads or writes resources on.
func touchedNodes(a Action) []string {
	switch a := a.(type) {
	case *Migration:
		return []string{a.Src, a.Dst}
	case *Run:
		return []string{a.On}
	case *Stop:
		return []string{a.On}
	case *Suspend:
		return []string{a.On, a.To}
	case *Resume:
		return []string{a.From, a.On}
	default:
		return nil
	}
}
