package api

import (
	"net/http"
	"strconv"

	"cwcs/internal/monitor"
)

// violationsJSON is the body of GET /v1/violations: the aggregate
// exposure integral and its per-entity attribution — who suffered
// (top-K vjobs), where (top-K nodes), on which dimension (the Kinds
// breakdown of each row) and which placement rules broke meanwhile.
type violationsJSON struct {
	Total             float64             `json:"total"`
	TransferSeconds   float64             `json:"transferSeconds"`
	RuleBreachSeconds float64             `json:"ruleBreachSeconds"`
	VJobs             []monitor.Summary   `json:"vjobs,omitempty"`
	Nodes             []monitor.Summary   `json:"nodes,omitempty"`
	Rules             []monitor.RuleEntry `json:"rules,omitempty"`
}

// handleViolations serves the attribution ledger's top-K view. ?k caps
// the per-entity rows (default 10, 0 means all). Ledger reads are
// self-locked, so this endpoint deliberately skips Exec.
func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	if s.Ledger == nil {
		writeError(w, http.StatusNotImplemented, "no attribution ledger")
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "violations: k must be a non-negative integer, got %q", q)
			return
		}
		k = n
	}
	writeJSON(w, http.StatusOK, violationsJSON{
		Total:             s.Ledger.Total(),
		TransferSeconds:   s.Ledger.TransferSeconds(),
		RuleBreachSeconds: s.Ledger.RuleBreachSeconds(),
		VJobs:             s.Ledger.TopVJobs(k),
		Nodes:             s.Ledger.TopNodes(k),
		Rules:             s.Ledger.RuleSeconds(),
	})
}

// handleSolver serves the solver search telemetry: strategy win
// counts, warm-start hit/miss tallies, explored-node and backtrack
// totals, per-cause re-solve counts and the recent per-solve reports.
// Telemetry reads are self-locked, so this endpoint skips Exec too.
func (s *Server) handleSolver(w http.ResponseWriter, r *http.Request) {
	if s.Solver == nil {
		writeError(w, http.StatusNotImplemented, "no solver telemetry")
		return
	}
	writeJSON(w, http.StatusOK, s.Solver.Snapshot())
}
