package vjob

import "fmt"

// Extract builds the sub-configuration induced by the given node and VM
// names: the listed nodes with their capacities, and the listed VMs
// with their current state and placement. Node and VM objects are
// shared with the parent (the planner treats them as immutable, exactly
// like Clone). Extract is the entry point of the partitioned optimizer:
// each partition solves an Extract-ed slice of the cluster and Rebase
// folds the per-partition outcomes back together.
//
// It returns an error when a name is unknown or when a listed VM is
// placed on a node outside the extracted set — such a VM belongs to
// another partition and extracting it here would break the placement
// invariant.
func (c *Configuration) Extract(nodes, vms []string) (*Configuration, error) {
	out := NewConfiguration()
	for _, name := range nodes {
		n := c.nodes[name]
		if n == nil {
			return nil, fmt.Errorf("vjob: extract references unknown node %q", name)
		}
		out.AddNode(n)
	}
	for _, name := range vms {
		v := c.vms[name]
		if v == nil {
			return nil, fmt.Errorf("vjob: extract references unknown VM %q", name)
		}
		out.AddVM(v)
		switch c.state[name] {
		case Running:
			if err := out.SetRunning(name, c.placement[name]); err != nil {
				return nil, fmt.Errorf("vjob: extract: %s hosted outside the node set: %w", name, err)
			}
		case Sleeping:
			if err := out.SetSleeping(name, c.placement[name]); err != nil {
				return nil, fmt.Errorf("vjob: extract: %s imaged outside the node set: %w", name, err)
			}
		}
	}
	return out, nil
}

// Rebase folds the outcome of a sub-problem back into the receiver:
// for every VM of src (the extracted sub-configuration a partition
// started from), the receiver takes the state and placement the VM has
// in dst; VMs of src that no longer exist in dst were terminated and
// are removed. Nodes, and VMs outside src, are untouched, so disjoint
// partitions can be rebased in any order.
func (c *Configuration) Rebase(src, dst *Configuration) error {
	for _, name := range src.vmOrder {
		if dst.vms[name] == nil {
			c.RemoveVM(name)
			continue
		}
		if c.vms[name] == nil {
			return fmt.Errorf("vjob: rebase of VM %q unknown to the base configuration", name)
		}
		switch dst.state[name] {
		case Running:
			if err := c.SetRunning(name, dst.placement[name]); err != nil {
				return err
			}
		case Sleeping:
			if err := c.SetSleeping(name, dst.placement[name]); err != nil {
				return err
			}
		case Waiting:
			if err := c.SetWaiting(name); err != nil {
				return err
			}
		}
	}
	return nil
}
