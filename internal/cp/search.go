package cp

import (
	"errors"
	"time"
)

// Options tunes the search.
type Options struct {
	// Deadline stops the search when reached; zero means no deadline.
	Deadline time.Time
	// Vars are the decision variables, all of which must be bound in a
	// solution. Defaults to every enumerated variable of the solver.
	Vars []*IntVar
	// FirstFail, when true (the paper's choice, §4.3), selects the
	// unbound variable with the smallest domain; ties are broken by
	// the order of Vars, so callers implement "hardest VMs first" by
	// ordering Vars by decreasing demand. When false, variables are
	// taken in Vars order.
	FirstFail bool
	// PreferValue, when true, tries each variable's Preferred() value
	// first (the paper assigns running VMs to their current node in
	// priority); remaining values are tried in ascending order.
	PreferValue bool
}

// Solution is an immutable assignment of the decision variables.
type Solution struct {
	values map[*IntVar]int
	// Objective is the objective value at the time the solution was
	// found (only set by Minimize).
	Objective int
}

// Value returns the solved value of v; ok is false when v was not a
// decision variable.
func (s Solution) Value(v *IntVar) (val int, ok bool) {
	val, ok = s.values[v]
	return
}

// MustValue returns the solved value of v and panics when v was not a
// decision variable (a programming error).
func (s Solution) MustValue(v *IntVar) int {
	val, ok := s.values[v]
	if !ok {
		panic("cp: variable not part of the solution: " + v.name)
	}
	return val
}

func (s *Solver) decisionVars(opts Options) []*IntVar {
	if len(opts.Vars) > 0 {
		return opts.Vars
	}
	var out []*IntVar
	for _, v := range s.vars {
		if _, ok := v.dom.(*bitsetDomain); ok {
			out = append(out, v)
		}
	}
	return out
}

// Solve searches for one solution. It returns ErrFailed when the
// problem is unsatisfiable and ErrDeadline on timeout.
func (s *Solver) Solve(opts Options) (Solution, error) {
	vars := s.decisionVars(opts)
	if err := s.propagate(); err != nil {
		return Solution{}, err
	}
	if err := s.search(vars, opts); err != nil {
		return Solution{}, err
	}
	s.solutions++
	return s.capture(vars), nil
}

// Minimize runs branch-and-bound on obj: it repeatedly searches for a
// solution, then constrains obj below the incumbent and restarts,
// until the space is exhausted (proving optimality) or the deadline
// expires. It returns the best solution found; the error is nil when
// optimality was proven, ErrDeadline when the deadline cut the proof
// short, and ErrFailed when no solution exists at all.
func (s *Solver) Minimize(obj *IntVar, opts Options) (Solution, error) {
	vars := s.decisionVars(opts)
	best := Solution{}
	found := false
	root := s.snapshot()
	bound := obj.Max()
	for {
		s.restore(root)
		if err := s.RemoveAbove(obj, bound); err != nil {
			if found {
				return best, nil
			}
			return Solution{}, ErrFailed
		}
		err := func() error {
			if err := s.propagate(); err != nil {
				return err
			}
			return s.search(vars, opts)
		}()
		switch {
		case err == nil:
			s.solutions++
			best = s.capture(vars)
			best.Objective = obj.Min()
			found = true
			bound = best.Objective - 1
		case errors.Is(err, ErrDeadline):
			if found {
				return best, ErrDeadline
			}
			return Solution{}, ErrDeadline
		case errors.Is(err, ErrFailed):
			if found {
				return best, nil // optimality proven
			}
			return Solution{}, ErrFailed
		default:
			return Solution{}, err
		}
	}
}

func (s *Solver) capture(vars []*IntVar) Solution {
	sol := Solution{values: make(map[*IntVar]int, len(vars))}
	for _, v := range vars {
		sol.values[v] = v.Value()
	}
	return sol
}

// search runs depth-first search until all vars are bound (nil) or the
// subtree fails (ErrFailed) or the deadline passes (ErrDeadline).
// Domains are assumed propagated to fixpoint on entry.
func (s *Solver) search(vars []*IntVar, opts Options) error {
	if !opts.Deadline.IsZero() && s.nodes&63 == 0 && time.Now().After(opts.Deadline) {
		return ErrDeadline
	}
	s.nodes++
	v := s.pick(vars, opts)
	if v == nil {
		return nil // all bound: solution
	}
	for _, val := range s.valueOrder(v, opts) {
		if !v.Contains(val) {
			continue // pruned by a sibling's failure propagation
		}
		snap := s.snapshot()
		err := func() error {
			if err := s.Assign(v, val); err != nil {
				return err
			}
			if err := s.propagate(); err != nil {
				return err
			}
			return s.search(vars, opts)
		}()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrDeadline) {
			return err
		}
		s.fails++
		s.restore(snap)
		// The value failed: remove it at this level and re-propagate,
		// so siblings benefit from the refutation.
		if err := s.RemoveValue(v, val); err != nil {
			return err
		}
		if err := s.propagate(); err != nil {
			return err
		}
	}
	return ErrFailed
}

func (s *Solver) pick(vars []*IntVar, opts Options) *IntVar {
	var best *IntVar
	for _, v := range vars {
		if v.Bound() {
			continue
		}
		if !opts.FirstFail {
			return v
		}
		if best == nil || v.Size() < best.Size() {
			best = v
		}
	}
	return best
}

func (s *Solver) valueOrder(v *IntVar, opts Options) []int {
	vals := v.Values()
	if !opts.PreferValue || v.pref < 0 || !v.Contains(v.pref) {
		return vals
	}
	out := make([]int, 0, len(vals))
	out = append(out, v.pref)
	for _, val := range vals {
		if val != v.pref {
			out = append(out, val)
		}
	}
	return out
}
