package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"cwcs/internal/cp"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// ErrNoViableConfiguration is returned when no viable destination
// configuration satisfies the requested vjob states at all.
var ErrNoViableConfiguration = errors.New("core: no viable configuration for the requested states")

// Optimizer computes, for a Problem, a viable destination
// configuration with a reconfiguration plan as cheap as possible. It
// implements §4.3: assignment variables per running VM over the node
// set, multi-knapsack viability constraints, a dynamically maintained
// lower bound on the future plan cost, first-fail variable ordering
// (hardest VMs first) and prefer-current-host value ordering, inside a
// branch-and-bound loop driven by the true §4.2 plan cost.
//
// The zero value uses the paper's heuristics with no time limit; set
// Timeout to bound the search (the paper uses 40 s for the §5.1
// study).
type Optimizer struct {
	// Timeout bounds the whole optimization; zero means none.
	Timeout time.Duration
	// Partitions decomposes the problem into node-disjoint
	// sub-problems solved concurrently and merged (see Partitioner and
	// plan.Merge): 0 picks the partition count automatically from the
	// cluster size (one slice per ~16 nodes, so clusters of 16 nodes
	// or fewer stay monolithic), 1 forces the
	// monolithic model, larger values request that many partitions
	// (capped by the problem's decomposability). Partitioned solves
	// trade global optimality for throughput: each slice is optimized
	// independently, so cross-partition migrations are never
	// considered, but the merged plan stays viable and honors every
	// placement rule. When any partition turns out infeasible — a VM
	// whose only hosts landed elsewhere — the optimizer falls back to
	// the monolithic model within the same budget.
	Partitions int
	// Workers is the number of parallel portfolio workers racing the
	// branch-and-bound: each worker owns an independent copy of the
	// model with a diverse search strategy (ordering, value choice,
	// knapsack bound, shuffled restarts) and all workers share the
	// incumbent bound, so the fixed time budget buys more explored
	// nodes on multi-core hardware. Zero defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential search.
	Workers int
	// UseKnapsack enables the DP subset-sum bound inside the packing
	// constraints (slower per node, stronger pruning).
	UseKnapsack bool
	// DisableCostBound drops the plan-cost lower-bound propagator, so
	// the search degenerates to first-viable-solution enumeration
	// (ablation).
	DisableCostBound bool
	// NaiveOrdering disables first-fail and prefer-current-host
	// (ablation).
	NaiveOrdering bool
	// PinRunning forbids migrating VMs that are already running: each
	// keeps its current host. This models a static RMS (the §5.2 FCFS
	// baseline never moves a placed job) and is also a useful
	// ablation of the migration action.
	PinRunning bool
	// WarmStart, when non-nil, is the destination configuration of a
	// previous solve of a nearby problem (the event-driven loop feeds
	// the last incumbent assignment here). It seeds the search twice:
	// the old assignment, when still viable for this problem, becomes
	// the initial incumbent alongside the FFD plan — so the
	// branch-and-bound starts from its bound — and per-VM warm hints
	// (cp.Options.Hints) steer every worker's value ordering towards
	// the old hosts before diversifying.
	WarmStart *vjob.Configuration
	// Builder plans the graphs of candidate configurations.
	Builder plan.Builder
}

// workers resolves the effective portfolio width.
func (o Optimizer) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// searchStrategy is the per-worker model and heuristic configuration:
// the cp-level ordering strategy plus the model-level knapsack toggle
// (which lives in the Packing constraints, not in cp.Options).
type searchStrategy struct {
	cp.Strategy
	useKnapsack bool
}

// baseStrategy is the configuration the Optimizer's own flags ask for.
func (o Optimizer) baseStrategy() searchStrategy {
	return searchStrategy{
		Strategy:    cp.Strategy{Label: "base", FirstFail: !o.NaiveOrdering, PreferValue: !o.NaiveOrdering},
		useKnapsack: o.UseKnapsack,
	}
}

// strategies builds the diverse portfolio lineup: the configured
// strategy first, then the knapsack-bound toggle and the two ordering
// variants, then deterministically seeded shuffled-restart workers
// (the same tail cp.DefaultStrategies uses). Labels feed the win
// telemetry (Result.Winner, cwcs_portfolio_wins_total{strategy}).
func (o Optimizer) strategies(n int) []searchStrategy {
	base := o.baseStrategy()
	out := make([]searchStrategy, 0, n)
	out = append(out, base)
	alts := []searchStrategy{
		{Strategy: base.Strategy, useKnapsack: !base.useKnapsack},
		{Strategy: cp.Strategy{FirstFail: true}, useKnapsack: base.useKnapsack},
		{Strategy: cp.Strategy{PreferValue: true}, useKnapsack: base.useKnapsack},
	}
	alts[0].Label = "knapsack"
	alts[1].Label = "firstfail"
	alts[2].Label = "prefer"
	for i := 1; i < n; i++ {
		if i-1 < len(alts) {
			out = append(out, alts[i-1])
			continue
		}
		st := base
		st.ShuffleSeed = int64(i)
		st.Label = fmt.Sprintf("shuffle#%d", i)
		out = append(out, st)
	}
	return out
}

// compiled is the strategy-independent compilation of a Problem,
// shared read-only by every portfolio worker.
type compiled struct {
	goals   []vmGoal
	runners []vmGoal // hardest first; one assignment variable each
	fixed   int      // cost incurred regardless of placement
	nodes   []*vjob.Node
	nodeIdx map[string]int
	model   *costModel
	allowed [][]int // per runner: candidate node indices
	prefs   []int   // per runner: preferred node index, -1 when none
	hints   []int   // per runner: warm-start node index, -1 when none
	maxObj  int
	// active marks the resource dimensions some runner demands: one
	// cp.Packing instance compiles per active dimension, zero-demand
	// dimensions compile away entirely.
	active [resources.MaxKinds]bool
}

// compile expands the problem into the shared model ingredients.
func (o Optimizer) compile(p Problem) (*compiled, error) {
	goals, err := p.compile()
	if err != nil {
		return nil, err
	}
	c := &compiled{goals: goals, model: newCostModel(p.Src, goals)}
	c.nodes = p.Src.Nodes()
	c.nodeIdx = make(map[string]int, len(c.nodes))
	for i, n := range c.nodes {
		c.nodeIdx[n.Name] = i
	}

	// Runners: every VM whose destination state is Running gets an
	// assignment variable; everything else contributes fixed costs.
	for _, g := range goals {
		if g.want == vjob.Running {
			c.runners = append(c.runners, g)
		} else {
			c.fixed += g.fixedCost()
		}
	}
	// Hardest VMs first (§4.3 first-fail flavor): decreasing memory
	// then CPU demand.
	sort.SliceStable(c.runners, func(i, j int) bool {
		a, b := c.runners[i].vm, c.runners[j].vm
		if a.MemoryDemand() != b.MemoryDemand() {
			return a.MemoryDemand() > b.MemoryDemand()
		}
		if a.CPUDemand() != b.CPUDemand() {
			return a.CPUDemand() > b.CPUDemand()
		}
		return a.Name < b.Name
	})

	// Active dimensions: a resource kind some to-be-running VM actually
	// demands. Only these compile into cp.Packing instances below, so a
	// CPU+memory instance builds exactly the two constraints it always
	// did and extra registered kinds cost nothing until a workload uses
	// them.
	for _, g := range c.runners {
		for _, k := range resources.Kinds() {
			if g.vm.Demand.Get(k) > 0 {
				c.active[k] = true
			}
		}
	}

	c.allowed = make([][]int, len(c.runners))
	c.prefs = make([]int, len(c.runners))
	c.hints = make([]int, len(c.runners))
	c.maxObj = c.fixed
	for i, g := range c.runners {
		var allowed []int
		for j, n := range c.nodes {
			if g.vm.Demand.Fits(n.Capacity) {
				allowed = append(allowed, j)
			}
		}
		if o.PinRunning && g.cur == vjob.Running {
			if idx, ok := c.nodeIdx[g.curLoc]; ok {
				allowed = []int{idx}
			}
		}
		if len(allowed) == 0 {
			return nil, fmt.Errorf("%w: %s fits on no node", ErrNoViableConfiguration, g.vm.Name)
		}
		c.allowed[i] = allowed
		c.prefs[i] = -1
		if idx, ok := c.nodeIdx[g.curLoc]; ok {
			c.prefs[i] = idx
		}
		c.hints[i] = -1
		if o.WarmStart != nil {
			if idx, ok := c.nodeIdx[o.WarmStart.HostOf(g.vm.Name)]; ok {
				c.hints[i] = idx
			}
		}
		worst := 0
		for _, j := range allowed {
			if cost := c.model.contribution(g, c.nodes[j].Name); cost > worst {
				worst = cost
			}
		}
		c.maxObj += worst
	}
	return c, nil
}

// searchModel is one solver instance over a compiled problem.
type searchModel struct {
	s    *cp.Solver
	vars []*cp.IntVar
	obj  *cp.IntVar
	opts cp.Options
}

// buildModel instantiates the §4.3 model under one strategy. Each
// portfolio worker gets its own build, so no solver state is shared.
func (o Optimizer) buildModel(p Problem, c *compiled, strat searchStrategy) (*searchModel, error) {
	s := cp.NewSolver()
	vars := make([]*cp.IntVar, len(c.runners))
	for i, g := range c.runners {
		vars[i] = s.NewEnumVar(g.vm.Name, c.allowed[i])
		if c.prefs[i] >= 0 {
			vars[i].SetPreferred(c.prefs[i])
		}
	}

	// One multi-knapsack viability constraint per ACTIVE dimension
	// (§4.3, generalized): dimensions no runner demands never build a
	// Packing instance, so the 2-D instances of the paper solve with
	// exactly the cpu and memory propagators they always had.
	if len(c.runners) > 0 {
		for _, k := range resources.Kinds() {
			if !c.active[k] {
				continue
			}
			w := make([]int, len(c.runners))
			capacity := make([]int, len(c.nodes))
			for i, g := range c.runners {
				w[i] = g.vm.Demand.Get(k)
			}
			for j, n := range c.nodes {
				capacity[j] = n.Capacity.Get(k)
			}
			s.Post(&cp.Packing{Name: k.String(), Items: vars, Weights: w, Capacity: capacity, UseKnapsack: strat.useKnapsack})
		}
	}

	varByName := make(map[string]*cp.IntVar, len(c.runners))
	for i, g := range c.runners {
		varByName[g.vm.Name] = vars[i]
	}
	for _, rule := range p.Rules {
		if err := rule.Apply(s, varByName, c.nodeIdx); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoViableConfiguration, err)
		}
	}

	obj := s.NewIntVar("cost", 0, c.maxObj)
	if !o.DisableCostBound {
		s.Post(o.costBound(c.model, c.runners, vars, c.nodes, obj, c.fixed))
	}

	opts := strat.Apply(cp.Options{Vars: vars})
	var hints map[*cp.IntVar]int
	for i, h := range c.hints {
		if h < 0 {
			continue
		}
		if hints == nil {
			hints = make(map[*cp.IntVar]int)
		}
		hints[vars[i]] = h
	}
	opts.Hints = hints
	return &searchModel{s: s, vars: vars, obj: obj, opts: opts}, nil
}

// Solve runs the optimization. It returns ErrNoViableConfiguration
// when even one solution cannot be found (within the timeout).
func (o Optimizer) Solve(p Problem) (*Result, error) {
	return o.SolveContext(context.Background(), p)
}

// SolveContext runs the optimization under ctx: canceling it stops the
// search and returns the best result found so far (or
// ErrNoViableConfiguration when there is none yet), exactly like the
// Timeout. With Workers > 1 the branch-and-bound races a portfolio of
// diverse workers that share the incumbent bound; with Partitions != 1
// the problem may first be decomposed into node-disjoint sub-problems
// solved concurrently.
func (o Optimizer) SolveContext(ctx context.Context, p Problem) (*Result, error) {
	if o.Timeout != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(o.Timeout))
		defer cancel()
	}
	if parts, err := (Partitioner{Parts: o.Partitions}).Split(p); err == nil && len(parts) > 1 {
		if res, perr := o.solvePartitioned(ctx, p, parts); perr == nil {
			return res, nil
		}
		// An infeasible (or timed-out) partition falls back to the
		// monolithic model under whatever budget remains: even with an
		// expired deadline the FFD warm start gives it a plan to
		// return, so asking for partitioning never yields less than the
		// monolithic path would.
	}
	return o.solveMonolithic(ctx, p, o.workers())
}

// solveMonolithic runs the single-model optimization: compile, FFD warm
// start, then the sequential branch-and-bound or the portfolio race.
func (o Optimizer) solveMonolithic(ctx context.Context, p Problem, workers int) (*Result, error) {
	c, err := o.compile(p)
	if err != nil {
		return nil, err
	}

	// Warm start: the FFD heuristic's plan seeds the incumbent, so the
	// optimizer never returns anything worse than the baseline and the
	// branch-and-bound starts with a meaningful ceiling. A previous
	// incumbent assignment (WarmStart), when still viable here, races
	// the FFD seed: on incremental re-solves it is usually a near-no-op
	// plan that undercuts FFD's from-scratch packing by far.
	var seed *Result
	seedLabel := ""
	if sd, err := FFDPlan(p); err == nil && rulesHold(p.Rules, sd.Dst) && o.seedRespectsPins(p, sd) {
		seed, seedLabel = sd, "ffd-seed"
	}
	warmHit := false
	if ws := o.warmSeed(p, c); ws != nil {
		warmHit = true
		if seed == nil || ws.Cost < seed.Cost {
			seed, seedLabel = ws, "warm-seed"
		}
	}

	var res *Result
	if workers > 1 && len(c.runners) > 0 {
		res, err = o.solvePortfolio(ctx, p, c, seed, seedLabel, workers)
	} else {
		res, err = o.solveSequential(ctx, p, c, seed, seedLabel)
	}
	if err != nil {
		return nil, err
	}
	res.WarmHit = warmHit
	return res, nil
}

// solvePartitioned optimizes the node-disjoint sub-problems
// concurrently — each through the usual portfolio machinery, with the
// worker budget spread across partitions — then rebases the
// per-partition destinations onto the full configuration and merges the
// plans. All partitions share the caller's deadline; a partition that
// cannot produce a plan fails the whole decomposition (the caller
// falls back to the monolithic model).
func (o Optimizer) solvePartitioned(ctx context.Context, p Problem, parts []Problem) (*Result, error) {
	results := make([]*Result, len(parts))
	errs := make([]error, len(parts))
	w := o.workers()
	share, extra := w/len(parts), w%len(parts)
	var wg sync.WaitGroup
	for i := range parts {
		wi := share
		if i < extra {
			wi++
		}
		if wi < 1 {
			wi = 1
		}
		wg.Add(1)
		go func(i, wi int) {
			defer wg.Done()
			results[i], errs[i] = o.solveMonolithic(ctx, parts[i], wi)
		}(i, wi)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: partition %d/%d: %w", i+1, len(parts), err)
		}
	}

	dst := p.Src.Clone()
	plans := make([]*plan.Plan, len(parts))
	agg := &Result{Optimal: true, Partitions: len(parts)}
	winCount := make(map[string]int)
	outcomes := make(map[string]WorkerOutcome)
	for i, r := range results {
		if err := dst.Rebase(parts[i].Src, r.Dst); err != nil {
			return nil, err
		}
		plans[i] = r.Plan
		agg.LowerBound += r.LowerBound
		agg.Solutions += r.Solutions
		agg.Nodes += r.Nodes
		agg.Fails += r.Fails
		agg.Optimal = agg.Optimal && r.Optimal
		agg.WarmHit = agg.WarmHit || r.WarmHit
		if r.Winner != "" {
			winCount[r.Winner]++
		}
		for _, w := range r.Outcomes {
			m := outcomes[w.Strategy]
			m.Strategy = w.Strategy
			m.Nodes += w.Nodes
			m.Backtracks += w.Backtracks
			m.Improvements += w.Improvements
			outcomes[w.Strategy] = m
		}
	}
	// The aggregate winner is the most frequent per-partition winner
	// (label order breaks ties); outcomes merge by strategy.
	for s, n := range winCount {
		if c := winCount[agg.Winner]; agg.Winner == "" || n > c || (n == c && s < agg.Winner) {
			agg.Winner = s
		}
	}
	for _, w := range outcomes {
		agg.Outcomes = append(agg.Outcomes, w)
	}
	sort.Slice(agg.Outcomes, func(i, j int) bool { return agg.Outcomes[i].Strategy < agg.Outcomes[j].Strategy })
	if !dst.Viable() {
		return nil, fmt.Errorf("core: merged configuration is non-viable: %v", dst.Violations())
	}
	for _, rule := range p.Rules {
		if err := rule.Check(dst); err != nil {
			return nil, fmt.Errorf("core: merged configuration violates rule: %w", err)
		}
	}
	merged, err := plan.Merge(p.Src, plans...)
	if err != nil {
		return nil, err
	}
	agg.Dst = dst
	agg.Plan = merged
	agg.Cost = merged.Cost()
	return agg, nil
}

// solveSequential is the single-worker branch-and-bound driven by the
// true §4.2 plan cost.
func (o Optimizer) solveSequential(ctx context.Context, p Problem, c *compiled, seed *Result, seedLabel string) (*Result, error) {
	m, err := o.buildModel(p, c, o.baseStrategy())
	if err != nil {
		return nil, err
	}
	m.opts.Ctx = ctx

	// Search telemetry: who produced the returned plan (the seed,
	// until the branch-and-bound improves on it) and the incumbent
	// trajectory of the improvements.
	start := time.Now()
	winner, improved := seedLabel, 0
	var traj []BoundPoint
	seal := func(r *Result) *Result {
		r.Winner = winner
		r.Trajectory = traj
		r.Outcomes = []WorkerOutcome{{Strategy: "base", Nodes: r.Nodes, Backtracks: r.Fails, Improvements: improved}}
		return r
	}

	best := seed
	bound := c.maxObj
	if best != nil && best.Cost-1 < bound {
		bound = best.Cost - 1
	}
	root := m.s.SaveState()
	for {
		// The decode/plan-build work between CP solves is not
		// interruptible and can be substantial on thousand-VM
		// instances, so re-check the budget between iterations.
		if ctx.Err() != nil {
			if best == nil {
				return nil, fmt.Errorf("%w: timeout before first solution", ErrNoViableConfiguration)
			}
			best.finishStats(m.s)
			return seal(best), nil
		}
		m.s.RestoreState(root)
		if err := m.s.RemoveAbove(m.obj, bound); err != nil {
			break // cost floor reached: optimality proven
		}
		sol, err := m.s.Solve(m.opts)
		if cp.Stopped(err) {
			if best == nil {
				return nil, fmt.Errorf("%w: timeout before first solution", ErrNoViableConfiguration)
			}
			best.finishStats(m.s)
			return seal(best), nil
		}
		if errors.Is(err, cp.ErrFailed) {
			break // search space exhausted: optimality proven
		}
		if err != nil {
			return nil, err
		}
		lb := c.lowerBound(sol, m.vars)
		dst, derr := o.decode(p, c.goals, c.runners, m.vars, c.nodes, sol)
		if derr == nil {
			if g, gerr := plan.BuildGraph(p.Src, dst); gerr == nil {
				if pl, perr := o.Builder.Plan(g); perr == nil {
					if best == nil || pl.Cost() < best.Cost {
						best = &Result{Dst: dst, Plan: pl, Cost: pl.Cost(), LowerBound: lb, Solutions: 0}
						winner, improved = "base", improved+1
						traj = append(traj, BoundPoint{Seconds: time.Since(start).Seconds(), Cost: best.Cost})
					}
					best.Solutions++
				}
			}
		}
		// Tighten: any better configuration must have a strictly lower
		// action-cost sum than this one, and its sum (an admissible
		// lower bound of its plan cost) must undercut the incumbent.
		bound = lb - 1
		if best != nil && best.Cost-1 < bound {
			bound = best.Cost - 1
		}
	}
	if best == nil {
		return nil, ErrNoViableConfiguration
	}
	best.Optimal = true
	best.finishStats(m.s)
	return seal(best), nil
}

// lowerBound sums the admissible per-VM cost contributions of a
// solution.
func (c *compiled) lowerBound(sol cp.Solution, vars []*cp.IntVar) int {
	lb := c.fixed
	for i, g := range c.runners {
		lb += c.model.contribution(g, c.nodes[sol.MustValue(vars[i])].Name)
	}
	return lb
}

// portfolioState is the shared incumbent of a portfolio run: the best
// result under a mutex, the bound under an atomic (read by every
// worker's inner search loop), and the aggregate run flags.
type portfolioState struct {
	bound *cp.Incumbent
	start time.Time

	mu           sync.Mutex
	best         *Result
	winner       string // strategy that produced best (the seed's label until beaten)
	solutions    int
	proven       bool
	err          error // first non-interruption worker error
	nodes, fails int64 // aggregated search counters
	outcomes     []WorkerOutcome
	traj         []BoundPoint
}

// offer publishes a decoded solution; the caller then tightens the
// bound with the returned incumbent cost. It reports whether the
// offer improved the incumbent, crediting the offering strategy and
// extending the bound trajectory when it did.
func (sh *portfolioState) offer(r *Result, strategy string) (int, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.solutions++
	improved := sh.best == nil || r.Cost < sh.best.Cost
	if improved {
		sh.best = r
		sh.winner = strategy
		sh.traj = append(sh.traj, BoundPoint{Seconds: time.Since(sh.start).Seconds(), Cost: r.Cost})
	}
	return sh.best.Cost, improved
}

// solvePortfolio races diverse workers over independent copies of the
// model. Every worker runs the same outer branch-and-bound loop as the
// sequential search, but restarts against the shared incumbent bound;
// the first worker to exhaust the space below the incumbent proves
// optimality (with respect to the bound, like the sequential search)
// and cancels the rest.
func (o Optimizer) solvePortfolio(ctx context.Context, p Problem, c *compiled, seed *Result, seedLabel string, workers int) (*Result, error) {
	bound := c.maxObj
	if seed != nil && seed.Cost-1 < bound {
		bound = seed.Cost - 1
	}
	sh := &portfolioState{bound: cp.NewIncumbent(bound), start: time.Now(), best: seed, winner: seedLabel}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for _, st := range o.strategies(workers) {
		wg.Add(1)
		// Each worker builds its own model inside its goroutine: model
		// construction overlaps across cores instead of eating into
		// the solve deadline serially.
		go func() {
			defer wg.Done()
			o.runPortfolioWorker(ctx, cancel, p, c, st, sh)
		}()
	}
	wg.Wait()

	if sh.err != nil {
		return nil, sh.err
	}
	if sh.best == nil {
		if sh.proven {
			return nil, ErrNoViableConfiguration
		}
		return nil, fmt.Errorf("%w: timeout before first solution", ErrNoViableConfiguration)
	}
	best := sh.best
	best.Optimal = sh.proven
	best.Solutions = sh.solutions
	best.Nodes, best.Fails = sh.nodes, sh.fails
	best.Winner = sh.winner
	sort.Slice(sh.outcomes, func(i, j int) bool { return sh.outcomes[i].Strategy < sh.outcomes[j].Strategy })
	best.Outcomes = sh.outcomes
	best.Trajectory = sh.traj
	return best, nil
}

// runPortfolioWorker drives one worker's branch-and-bound loop until a
// definitive answer or an interruption. cancel is invoked on
// definitive answers so sibling workers stop immediately. The loop
// mirrors cp's minimizeWorker restart scheme deliberately — it cannot
// reuse it because the bound here is driven by the true §4.2 plan
// cost, which only this package can evaluate (decode + Builder.Plan).
func (o Optimizer) runPortfolioWorker(ctx context.Context, cancel context.CancelFunc, p Problem, c *compiled, st searchStrategy, sh *portfolioState) {
	m, err := o.buildModel(p, c, st)
	if err != nil {
		sh.mu.Lock()
		if sh.err == nil {
			sh.err = err
		}
		sh.mu.Unlock()
		cancel()
		return
	}
	improved := 0
	defer func() {
		n, f, _, _ := m.s.Stats()
		sh.mu.Lock()
		sh.nodes += n
		sh.fails += f
		sh.outcomes = append(sh.outcomes, WorkerOutcome{Strategy: st.Label, Nodes: n, Backtracks: f, Improvements: improved})
		sh.mu.Unlock()
	}()
	opts := m.opts
	opts.Ctx = ctx
	opts.SharedBound = sh.bound
	opts.SharedObj = m.obj
	root := m.s.SaveState()
	for {
		if ctx.Err() != nil {
			return // budget exhausted between iterations
		}
		b := sh.bound.Bound()
		m.s.RestoreState(root)
		if err := m.s.RemoveAbove(m.obj, b); err != nil {
			sh.mu.Lock()
			sh.proven = true
			sh.mu.Unlock()
			cancel()
			return
		}
		sol, err := m.s.Solve(opts)
		switch {
		case cp.Stopped(err):
			return
		case errors.Is(err, cp.ErrFailed):
			sh.mu.Lock()
			sh.proven = true
			sh.mu.Unlock()
			cancel()
			return
		case err != nil:
			sh.mu.Lock()
			if sh.err == nil {
				sh.err = err
			}
			sh.mu.Unlock()
			cancel()
			return
		}
		lb := c.lowerBound(sol, m.vars)
		if dst, derr := o.decode(p, c.goals, c.runners, m.vars, c.nodes, sol); derr == nil {
			if g, gerr := plan.BuildGraph(p.Src, dst); gerr == nil {
				if pl, perr := o.Builder.Plan(g); perr == nil {
					incumbent, better := sh.offer(&Result{Dst: dst, Plan: pl, Cost: pl.Cost(), LowerBound: lb}, st.Label)
					if better {
						improved++
					}
					sh.bound.Tighten(incumbent - 1)
				}
			}
		}
		sh.bound.Tighten(lb - 1)
	}
}

// warmSeed decodes the WarmStart assignment into a Result for the
// current problem: every to-be-running VM goes back to its old host.
// It returns nil when the old assignment no longer applies — a VM
// that was not running in the warm configuration, a host that left,
// a viability or rule violation — and the caller falls back to the
// FFD seed alone.
func (o Optimizer) warmSeed(p Problem, c *compiled) *Result {
	if o.WarmStart == nil {
		return nil
	}
	dst := p.Src.Clone()
	for _, g := range c.goals {
		if g.want == vjob.Running {
			continue
		}
		switch g.want {
		case vjob.Sleeping:
			if g.cur == vjob.Running {
				if dst.SetSleeping(g.vm.Name, g.curLoc) != nil {
					return nil
				}
			}
		case vjob.Terminated:
			dst.RemoveVM(g.vm.Name)
		}
	}
	for i, g := range c.runners {
		idx := c.hints[i]
		if idx < 0 {
			return nil
		}
		if dst.SetRunning(g.vm.Name, c.nodes[idx].Name) != nil {
			return nil
		}
	}
	if !dst.Viable() || !rulesHold(p.Rules, dst) {
		return nil
	}
	seed := &Result{Dst: dst}
	if !o.seedRespectsPins(p, seed) {
		return nil
	}
	g, err := plan.BuildGraph(p.Src, dst)
	if err != nil {
		return nil
	}
	pl, err := o.Builder.Plan(g)
	if err != nil {
		return nil
	}
	seed.Plan = pl
	seed.Cost = pl.Cost()
	return seed
}

// seedRespectsPins rejects a heuristic seed that migrates a running VM
// when PinRunning is in force: the FFD heuristic re-places everything
// from scratch and knows nothing about pinning.
func (o Optimizer) seedRespectsPins(p Problem, seed *Result) bool {
	if !o.PinRunning {
		return true
	}
	for _, v := range p.Src.VMs() {
		if p.Src.StateOf(v.Name) == vjob.Running && seed.Dst.StateOf(v.Name) == vjob.Running &&
			seed.Dst.HostOf(v.Name) != p.Src.HostOf(v.Name) {
			return false
		}
	}
	return true
}

func (r *Result) finishStats(s *cp.Solver) {
	nodes, fails, _, _ := s.Stats()
	r.Nodes, r.Fails = nodes, fails
}

// costBound is the dynamic cost estimation of §4.3: it keeps the
// objective's lower bound equal to the fixed costs plus, per VM,
// either the exact contribution of its assignment or the cheapest
// contribution still in its domain; and it prunes node choices that
// would push the bound past the incumbent.
func (o Optimizer) costBound(model *costModel, runners []vmGoal, vars []*cp.IntVar, nodes []*vjob.Node, obj *cp.IntVar, fixed int) cp.Constraint {
	watched := append([]*cp.IntVar{obj}, vars...)
	return &cp.FuncConstraint{
		On: watched,
		// Rebind keeps the model cloneable (cp.Solver.Clone): the Run
		// closure captures this solver's variables, so a clone rebuilds
		// the constraint over the remapped ones.
		Rebind: func(remap func(*cp.IntVar) *cp.IntVar) cp.Constraint {
			nv := make([]*cp.IntVar, len(vars))
			for i, v := range vars {
				nv[i] = remap(v)
			}
			return o.costBound(model, runners, nv, nodes, remap(obj), fixed)
		},
		Run: func(s *cp.Solver) error {
			lb := fixed
			mins := make([]int, len(vars))
			for i, v := range vars {
				if v.Bound() {
					mins[i] = model.contribution(runners[i], nodes[v.Value()].Name)
				} else {
					min := -1
					for _, val := range v.Values() {
						c := model.contribution(runners[i], nodes[val].Name)
						if min < 0 || c < min {
							min = c
						}
					}
					mins[i] = min
				}
				lb += mins[i]
			}
			if err := s.RemoveBelow(obj, lb); err != nil {
				return err
			}
			slack := obj.Max() - lb
			for i, v := range vars {
				if v.Bound() {
					continue
				}
				for _, val := range v.Values() {
					if model.contribution(runners[i], nodes[val].Name)-mins[i] > slack {
						if err := s.RemoveValue(v, val); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
}

// decode turns a solver solution into the destination configuration.
func (o Optimizer) decode(p Problem, goals []vmGoal, runners []vmGoal, vars []*cp.IntVar, nodes []*vjob.Node, sol cp.Solution) (*vjob.Configuration, error) {
	dst := p.Src.Clone()
	for _, g := range goals {
		switch g.want {
		case vjob.Sleeping:
			if g.cur == vjob.Running {
				if err := dst.SetSleeping(g.vm.Name, g.curLoc); err != nil {
					return nil, err
				}
			}
		case vjob.Terminated:
			dst.RemoveVM(g.vm.Name)
		case vjob.Waiting:
			// stays waiting
		}
	}
	for i, g := range runners {
		if err := dst.SetRunning(g.vm.Name, nodes[sol.MustValue(vars[i])].Name); err != nil {
			return nil, err
		}
	}
	if !dst.Viable() {
		return nil, fmt.Errorf("core: solver produced non-viable configuration: %v", dst.Violations())
	}
	for _, rule := range p.Rules {
		if err := rule.Check(dst); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// rulesHold reports whether every placement rule accepts the
// configuration.
func rulesHold(rules []PlacementRule, cfg *vjob.Configuration) bool {
	for _, r := range rules {
		if r.Check(cfg) != nil {
			return false
		}
	}
	return true
}
