package cp

import (
	"fmt"

	"cwcs/internal/packing"
)

// NotEqualOffset is the constraint x != y + offset. It propagates once
// one side is bound. With offset 0 it is a plain disequality; offsets
// express diagonal constraints (n-queens in the tests).
type NotEqualOffset struct {
	X, Y   *IntVar
	Offset int
}

// Vars returns the two operands.
func (c *NotEqualOffset) Vars() []*IntVar { return []*IntVar{c.X, c.Y} }

// CloneFor copies the constraint over the remapped operands.
func (c *NotEqualOffset) CloneFor(remap func(*IntVar) *IntVar) Constraint {
	return &NotEqualOffset{X: remap(c.X), Y: remap(c.Y), Offset: c.Offset}
}

// Propagate removes the forbidden value from the unbound side.
func (c *NotEqualOffset) Propagate(s *Solver) error {
	if c.Y.Bound() {
		if err := s.RemoveValue(c.X, c.Y.Value()+c.Offset); err != nil {
			return err
		}
	}
	if c.X.Bound() {
		if err := s.RemoveValue(c.Y, c.X.Value()-c.Offset); err != nil {
			return err
		}
	}
	return nil
}

// Packing is the multi-knapsack viability constraint of §4.3: given
// assignment variables (one per item, domain = bin indices), item
// weights and bin capacities, it enforces
//
//	sum of weights of the items packed on bin b <= Capacity[b]
//
// for every bin. It prunes bins that cannot accept an item on top of
// the already-assigned load, and fails early when the total remaining
// weight exceeds what the bins can still absorb. With UseKnapsack it
// tightens the absorbable load per bin with the dynamic-programming
// subset-sum bound (Trick 2001), catching dead ends plain capacity
// arithmetic misses.
type Packing struct {
	// Name tags failure messages (e.g. "memory" or "cpu").
	Name string
	// Items are the assignment variables; Items[i] = b packs item i on
	// bin b.
	Items []*IntVar
	// Weights[i] is the weight of item i. Zero-weight items are
	// ignored by propagation (they always fit).
	Weights []int
	// Capacity[b] is the capacity of bin b.
	Capacity []int
	// UseKnapsack enables the DP subset-sum bound.
	UseKnapsack bool
}

// Vars returns the item assignment variables.
func (c *Packing) Vars() []*IntVar { return c.Items }

// CloneFor copies the constraint over the remapped items; the weight
// and capacity slices are shared (they are never mutated).
func (c *Packing) CloneFor(remap func(*IntVar) *IntVar) Constraint {
	n := *c
	n.Items = make([]*IntVar, len(c.Items))
	for i, v := range c.Items {
		n.Items[i] = remap(v)
	}
	return &n
}

// Propagate enforces the capacity constraints.
func (c *Packing) Propagate(s *Solver) error {
	nbins := len(c.Capacity)
	assigned, unboundWeight, err := c.loads()
	if err != nil {
		return err
	}
	// Prune bins that cannot take an item anymore. Pruning may bind a
	// variable, so the loads are recomputed afterwards: the global
	// bound below must not see a half-updated picture.
	for i, v := range c.Items {
		if v.Bound() || c.Weights[i] == 0 {
			continue
		}
		for _, b := range v.Values() {
			if assigned[b]+c.Weights[i] > c.Capacity[b] {
				if err := s.RemoveValue(v, b); err != nil {
					return err
				}
			}
		}
	}
	if assigned, unboundWeight, err = c.loads(); err != nil {
		return err
	}
	if unboundWeight == 0 {
		return nil
	}
	// Global absorbable-load bound.
	absorbable := 0
	var candWeights [][]int
	if c.UseKnapsack {
		candWeights = make([][]int, nbins)
		for i, v := range c.Items {
			if v.Bound() || c.Weights[i] == 0 {
				continue
			}
			for _, b := range v.Values() {
				candWeights[b] = append(candWeights[b], c.Weights[i])
			}
		}
	}
	for b := 0; b < nbins; b++ {
		free := c.Capacity[b] - assigned[b]
		if free <= 0 {
			continue
		}
		if c.UseKnapsack {
			absorbable += packing.MaxReachableLoad(free, candWeights[b])
		} else {
			absorbable += free
		}
	}
	if absorbable < unboundWeight {
		return fmt.Errorf("%w: %s remaining weight %d exceeds absorbable %d", ErrFailed, c.Name, unboundWeight, absorbable)
	}
	return nil
}

// loads tallies the bound (per-bin) and unbound weights and checks the
// hard per-bin overloads.
func (c *Packing) loads() (assigned []int, unboundWeight int, err error) {
	assigned = make([]int, len(c.Capacity))
	for i, v := range c.Items {
		if c.Weights[i] == 0 {
			continue
		}
		if v.Bound() {
			assigned[v.Value()] += c.Weights[i]
		} else {
			unboundWeight += c.Weights[i]
		}
	}
	for b, load := range assigned {
		if load > c.Capacity[b] {
			return nil, 0, fmt.Errorf("%w: %s bin %d overloaded (%d > %d)", ErrFailed, c.Name, b, load, c.Capacity[b])
		}
	}
	return assigned, unboundWeight, nil
}

// FuncConstraint adapts a function into a Constraint, for
// problem-specific propagators (the reconfiguration cost bound in
// internal/core) and for tests.
type FuncConstraint struct {
	// On are the watched variables.
	On []*IntVar
	// Run is the propagation body.
	Run func(s *Solver) error
	// Rebind, when set, rebuilds the constraint over the variables of
	// a cloned solver (Run closures capture variables of the original
	// solver, so a structural copy is not enough). Without it the
	// constraint — and hence the owning solver — cannot be cloned for
	// portfolio search.
	Rebind func(remap func(*IntVar) *IntVar) Constraint
}

// Vars returns the watched variables.
func (c *FuncConstraint) Vars() []*IntVar { return c.On }

// CloneFor delegates to Rebind; it returns nil (not cloneable) when no
// Rebind hook was provided.
func (c *FuncConstraint) CloneFor(remap func(*IntVar) *IntVar) Constraint {
	if c.Rebind == nil {
		return nil
	}
	return c.Rebind(remap)
}

// Propagate invokes the body.
func (c *FuncConstraint) Propagate(s *Solver) error { return c.Run(s) }
