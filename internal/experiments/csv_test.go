package experiments

import (
	"strings"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/monitor"
)

func TestFig10CSV(t *testing.T) {
	rows := []Fig10Row{{VMs: 54, Samples: 3, FFDMean: 1000, EntropyMean: 100, ReductionPct: 90}}
	csv := Fig10CSV(rows)
	if !strings.HasPrefix(csv, "vms,") {
		t.Fatal("missing header")
	}
	if !strings.Contains(csv, "54,3,1000,100,90.0\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestFig3CSV(t *testing.T) {
	csv := Fig3CSV(Fig3(512))
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "512,6.0,25.0,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestFig11CSV(t *testing.T) {
	res := ClusterResult{Records: []core.SwitchRecord{
		{At: 30, Cost: 1024, Duration: 19.5, Actions: 3, Pools: 2},
	}}
	csv := Fig11CSV(res)
	if !strings.Contains(csv, "30,1024,19.5,3,2,0\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestFig13CSV(t *testing.T) {
	fcfs := ClusterResult{Samples: []monitor.Sample{{T: 10, UsedCPU: 2, CapCPU: 4}}}
	ent := ClusterResult{Samples: []monitor.Sample{{T: 10, UsedCPU: 4, CapCPU: 4}}}
	csv := Fig13CSV(fcfs, ent)
	if !strings.Contains(csv, "fcfs,10,2,4,50.0") || !strings.Contains(csv, "entropy,10,4,4,100.0") {
		t.Fatalf("csv = %q", csv)
	}
}
