package core

import (
	"fmt"
	"testing"

	"cwcs/internal/vjob"
)

// benchChurnCluster builds a cluster of nodes 1-CPU nodes with one
// running VM per even node and fences pairing nodes {2i, 2i+1}, so the
// partitioner carves deterministic two-node slices.
func benchChurnCluster(b *testing.B, nodes int) (*vjob.Configuration, []PlacementRule, []*vjob.VJob) {
	b.Helper()
	cfg := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("n%03d", i), 1, 4096))
	}
	var rules []PlacementRule
	var jobs []*vjob.VJob
	for i := 0; i < nodes; i += 2 {
		job := fmt.Sprintf("j%03d", i)
		v := vjob.NewVM(fmt.Sprintf("v%03d", i), job, 1, 1024)
		j := vjob.NewVJob(job, 0, v)
		cfg.AddVM(v)
		if err := cfg.SetRunning(v.Name, fmt.Sprintf("n%03d", i)); err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, j)
		rules = append(rules, Fence{
			VMs:   []string{v.Name, fmt.Sprintf("x%03d", i)},
			Nodes: []string{fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i+1)},
		})
	}
	return cfg, rules, jobs
}

// BenchmarkLoopEventIteration measures one event-driven wake-up end to
// end: an arrival overloads one slice, the loop re-solves just that
// slice and executes the one-migration switch.
func BenchmarkLoopEventIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, rules, jobs := benchChurnCluster(b, 64)
		a := &fakeManaged{fakeActuator: fakeActuator{cfg: cfg}, poolSecs: 1}
		l := &Loop{
			Decision:    keepAll,
			EventDriven: true,
			Debounce:    1,
			Optimizer:   Optimizer{Partitions: 0, Workers: 1},
			Rules:       rules,
			Queue:       func() []*vjob.VJob { return jobs },
		}
		l.Start(a)
		a.run(1)
		cfg.AddVM(vjob.NewVM("x000", "j000", 1, 1024))
		if err := cfg.SetRunning("x000", "n000"); err != nil {
			b.Fatal(err)
		}
		l.Notify(a, Event{Kind: VMArrival, VMs: []string{"x000"}, Nodes: []string{"n000"}})
		a.run(100)
		if l.Stats.SliceSolves == 0 {
			b.Fatal("no slice solve happened")
		}
	}
}

// BenchmarkLoopPeriodicIteration measures one periodic round over the
// same cluster and the same arrival: the monolithic observe/decide/
// solve/execute baseline the event-driven engine is compared against.
func BenchmarkLoopPeriodicIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, rules, jobs := benchChurnCluster(b, 64)
		a := &fakeManaged{fakeActuator: fakeActuator{cfg: cfg}, poolSecs: 1}
		cfg.AddVM(vjob.NewVM("x000", "j000", 1, 1024))
		if err := cfg.SetRunning("x000", "n000"); err != nil {
			b.Fatal(err)
		}
		l := &Loop{
			Decision:  keepAll,
			Interval:  30,
			Optimizer: Optimizer{Partitions: 0, Workers: 1},
			Rules:     rules,
			Queue:     func() []*vjob.VJob { return jobs },
		}
		l.Start(a)
		a.run(1)
		l.Stop()
		if len(l.Records) == 0 {
			b.Fatal("no switch executed")
		}
	}
}

// BenchmarkPartitionSplit isolates the partitioner walk the event loop
// performs at every wake-up.
func BenchmarkPartitionSplit(b *testing.B) {
	cfg, rules, _ := benchChurnCluster(b, 512)
	p := Problem{Src: cfg, Target: map[string]vjob.State{}, Rules: rules}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, err := (Partitioner{}).Split(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(parts) < 2 {
			b.Fatal("no decomposition")
		}
	}
}
