package sim

import (
	"fmt"
	"math"
	"testing"

	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

func newSim(t *testing.T, nodes, cpu, mem int) *Cluster {
	t.Helper()
	cfg := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		cfg.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), cpu, mem))
	}
	c := New(cfg, duration.Default())
	// Every simulation in this suite runs under the invariant watcher:
	// no event may push a node past its capacities beyond what the
	// test's initial placement already over-committed.
	w := WatchInvariants(c)
	t.Cleanup(func() {
		if err := w.Err(); err != nil {
			t.Errorf("invariants violated: %v", err)
		}
	})
	return c
}

func addRunning(t *testing.T, c *Cluster, name, node string, cpu, mem int) *vjob.VM {
	t.Helper()
	v := vjob.NewVM(name, "j", cpu, mem)
	c.Config().AddVM(v)
	if err := c.Config().SetRunning(name, node); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEventOrdering(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	var order []int
	c.Schedule(10, func() { order = append(order, 2) })
	c.Schedule(5, func() { order = append(order, 1) })
	c.Schedule(10, func() { order = append(order, 3) }) // same time: FIFO
	c.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 10 {
		t.Fatalf("clock = %v, want 10 (quiescent after last event)", c.Now())
	}
}

func TestSchedulePastClamped(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	c.Schedule(50, func() {})
	c.Run(60)
	fired := false
	c.Schedule(10, func() { fired = true }) // in the past: clamps to now
	c.Run(100)
	if !fired {
		t.Fatal("past event never fired")
	}
}

func TestWorkloadProgressAtFullSpeed(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	addRunning(t, c, "vm1", "n00", 1, 1024)
	c.SetWorkload("vm1", []Phase{{CPU: 1, Seconds: 100}})
	c.Run(50)
	if got := c.RemainingWork("vm1"); math.Abs(got-50) > 1e-6 {
		t.Fatalf("remaining = %v, want 50", got)
	}
	c.Run(200)
	if !c.WorkloadDone("vm1") {
		t.Fatal("workload not done after enough time")
	}
	if got := c.Config().VM("vm1").CPUDemand(); got != 0 {
		t.Fatalf("finished VM still demands %d CPU", got)
	}
}

func TestCPUSharingOnOverloadedNode(t *testing.T) {
	// Two busy VMs on a 1-CPU node progress at half speed.
	c := newSim(t, 1, 1, 8192)
	addRunning(t, c, "a", "n00", 1, 1024)
	addRunning(t, c, "b", "n00", 1, 1024)
	c.SetWorkload("a", []Phase{{CPU: 1, Seconds: 100}})
	c.SetWorkload("b", []Phase{{CPU: 1, Seconds: 100}})
	c.Run(100)
	if got := c.RemainingWork("a"); math.Abs(got-50) > 1e-6 {
		t.Fatalf("remaining = %v, want 50 (half speed)", got)
	}
}

func TestCommunicationPhaseElapsesWithoutCPU(t *testing.T) {
	c := newSim(t, 1, 1, 8192)
	addRunning(t, c, "a", "n00", 1, 1024)
	addRunning(t, c, "b", "n00", 1, 1024)
	// a computes, b is in a communication phase: both progress fully.
	c.SetWorkload("a", []Phase{{CPU: 1, Seconds: 100}})
	c.SetWorkload("b", []Phase{{CPU: 0, Seconds: 100}})
	c.Run(100)
	if got := c.RemainingWork("a"); got > 1e-6 {
		t.Fatalf("a not at full speed: remaining %v", got)
	}
	if !c.WorkloadDone("b") {
		t.Fatal("communication phase should elapse")
	}
}

func TestPhaseTransitionsUpdateDemand(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	addRunning(t, c, "vm1", "n00", 1, 1024)
	c.SetWorkload("vm1", []Phase{
		{CPU: 1, Seconds: 10},
		{CPU: 0, Seconds: 5},
		{CPU: 1, Seconds: 10},
	})
	c.Run(12)
	if got := c.Config().VM("vm1").CPUDemand(); got != 0 {
		t.Fatalf("demand during communication phase = %d, want 0", got)
	}
	c.Run(16)
	if got := c.Config().VM("vm1").CPUDemand(); got != 1 {
		t.Fatalf("demand in third phase = %d, want 1", got)
	}
	c.Run(100)
	if !c.WorkloadDone("vm1") {
		t.Fatal("phased workload never completed")
	}
}

func TestMigrationMovesVMAfterDuration(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	vm := addRunning(t, c, "vm1", "n00", 1, 1024)
	var doneAt float64 = -1
	c.StartAction(&plan.Migration{Machine: vm, Src: "n00", Dst: "n01"}, func(err error) {
		if err != nil {
			t.Errorf("migration failed: %v", err)
		}
		doneAt = c.Now()
	})
	c.Run(1000)
	want := duration.Default().Migrate(1024).Seconds()
	if math.Abs(doneAt-want) > 1e-6 {
		t.Fatalf("migration completed at %v, want %v", doneAt, want)
	}
	if c.Config().HostOf("vm1") != "n01" {
		t.Fatal("VM not moved")
	}
}

func TestSuspendFreezesWorkload(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	vm := addRunning(t, c, "vm1", "n00", 1, 1024)
	c.SetWorkload("vm1", []Phase{{CPU: 1, Seconds: 1000}})
	c.Run(10) // 10s of progress
	c.StartAction(&plan.Suspend{Machine: vm, On: "n00", To: "n00"}, nil)
	c.Run(500)
	if got := c.RemainingWork("vm1"); math.Abs(got-990) > 1e-6 {
		t.Fatalf("suspended VM progressed: remaining %v, want 990", got)
	}
	if c.Config().StateOf("vm1") != vjob.Sleeping {
		t.Fatal("VM not sleeping")
	}
	// Resume locally: workload continues.
	c.StartAction(&plan.Resume{Machine: vm, From: "n00", On: "n00"}, nil)
	c.Run(c.Now() + 2000)
	if !c.WorkloadDone("vm1") {
		t.Fatalf("resumed VM never finished (remaining %v)", c.RemainingWork("vm1"))
	}
}

func TestDecelerationDuringOperation(t *testing.T) {
	// A busy VM co-hosted with a local suspend runs at 1/1.3 speed
	// while the suspend is in flight.
	c := newSim(t, 1, 2, 8192)
	busy := addRunning(t, c, "busy", "n00", 1, 1024)
	victim := addRunning(t, c, "victim", "n00", 1, 2048)
	_ = busy
	c.SetWorkload("busy", []Phase{{CPU: 1, Seconds: 10000}})
	c.StartAction(&plan.Suspend{Machine: victim, On: "n00", To: "n00"}, nil)
	opSecs := duration.Default().Suspend(2048, duration.Local).Seconds()
	c.Run(opSecs)
	progressed := 10000 - c.RemainingWork("busy")
	want := opSecs / 1.3
	if math.Abs(progressed-want) > 1e-6 {
		t.Fatalf("progress under deceleration = %v, want %v", progressed, want)
	}
	// After the operation the busy VM runs at full speed again.
	c.Run(opSecs + 100)
	progressed2 := 10000 - c.RemainingWork("busy") - progressed
	if math.Abs(progressed2-100) > 1e-6 {
		t.Fatalf("post-op progress = %v, want 100", progressed2)
	}
}

func TestRemoteOperationDeceleratesMore(t *testing.T) {
	c := newSim(t, 2, 2, 8192)
	addRunning(t, c, "busy", "n00", 1, 1024)
	victim := addRunning(t, c, "victim", "n00", 1, 1024)
	c.SetWorkload("busy", []Phase{{CPU: 1, Seconds: 10000}})
	// Remote suspend: image pushed to n01.
	c.StartAction(&plan.Suspend{Machine: victim, On: "n00", To: "n01"}, nil)
	opSecs := duration.Default().Suspend(1024, duration.SCP).Seconds()
	c.Run(opSecs)
	progressed := 10000 - c.RemainingWork("busy")
	want := opSecs / 1.5
	if math.Abs(progressed-want) > 1e-6 {
		t.Fatalf("progress under remote deceleration = %v, want %v", progressed, want)
	}
	local, remote := c.TransferCounts()
	if local != 0 || remote != 1 {
		t.Fatalf("transfer counts = %d local, %d remote", local, remote)
	}
}

func TestConcurrentOpsUseMaxDeceleration(t *testing.T) {
	// A local suspend (1.3x) and a remote suspend (1.5x) overlap on
	// the same node: the busy VM suffers the stronger factor while
	// both are in flight.
	c := newSim(t, 2, 3, 8192)
	addRunning(t, c, "busy", "n00", 1, 512)
	v1 := addRunning(t, c, "v1", "n00", 1, 1024)
	v2 := addRunning(t, c, "v2", "n00", 1, 1024)
	c.SetWorkload("busy", []Phase{{CPU: 1, Seconds: 10000}})
	c.StartAction(&plan.Suspend{Machine: v1, On: "n00", To: "n00"}, nil) // local
	c.StartAction(&plan.Suspend{Machine: v2, On: "n00", To: "n01"}, nil) // remote
	localSecs := duration.Default().Suspend(1024, duration.Local).Seconds()
	remoteSecs := duration.Default().Suspend(1024, duration.SCP).Seconds()
	c.Run(localSecs)
	// While both run, the remote factor (1.5) dominates.
	progressed := 10000 - c.RemainingWork("busy")
	if math.Abs(progressed-localSecs/1.5) > 1e-6 {
		t.Fatalf("progress = %v, want %v (1.5x)", progressed, localSecs/1.5)
	}
	// After the local suspend ends, only the remote one decelerates.
	c.Run(remoteSecs)
	progressed2 := 10000 - c.RemainingWork("busy") - progressed
	want := (remoteSecs - localSecs) / 1.5
	if math.Abs(progressed2-want) > 1e-6 {
		t.Fatalf("tail progress = %v, want %v", progressed2, want)
	}
}

func TestRunAndStopLifecycle(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	v := vjob.NewVM("vm1", "j", 1, 1024)
	c.Config().AddVM(v)
	c.SetWorkload("vm1", []Phase{{CPU: 1, Seconds: 30}})
	c.StartAction(&plan.Run{Machine: v, On: "n00"}, nil)
	// Workload starts only after boot (6 s).
	c.Run(6 + 30 + 1)
	if !c.WorkloadDone("vm1") {
		t.Fatalf("workload not finished; remaining %v", c.RemainingWork("vm1"))
	}
	c.StartAction(&plan.Stop{Machine: v, On: "n00"}, nil)
	c.Run(c.Now() + 100)
	if c.Config().VM("vm1") != nil {
		t.Fatal("VM still present after stop")
	}
	counts := c.ActionCounts()
	if counts["run"] != 1 || counts["stop"] != 1 {
		t.Fatalf("action counts = %v", counts)
	}
}

func TestSuspendToRAMFastPath(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	vm := addRunning(t, c, "vm1", "n00", 1, 2048)
	c.SuspendToRAM = true
	var doneAt float64 = -1
	c.StartAction(&plan.Suspend{Machine: vm, On: "n00", To: "n00"}, func(error) { doneAt = c.Now() })
	c.Run(1000)
	want := duration.Default().SuspendToRAM().Seconds()
	if math.Abs(doneAt-want) > 1e-6 {
		t.Fatalf("RAM suspend took %v, want %v", doneAt, want)
	}
}

func TestActionErrorReported(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	vm := addRunning(t, c, "vm1", "n00", 1, 1024)
	var got error
	// Wrong source host: Apply must fail and be reported.
	c.StartAction(&plan.Migration{Machine: vm, Src: "n01", Dst: "n00"}, func(err error) { got = err })
	c.Run(1000)
	if got == nil {
		t.Fatal("invalid action reported no error")
	}
}

func TestSnapshotIsolatedFromLiveConfig(t *testing.T) {
	c := newSim(t, 2, 2, 4096)
	vm := addRunning(t, c, "vm1", "n00", 1, 1024)
	snap := c.Snapshot()
	c.StartAction(&plan.Migration{Machine: vm, Src: "n00", Dst: "n01"}, nil)
	c.Run(1000)
	if snap.HostOf("vm1") != "n00" {
		t.Fatal("snapshot mutated by live migration")
	}
}

func TestVJobDone(t *testing.T) {
	c := newSim(t, 1, 2, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("a", "", 1, 512), vjob.NewVM("b", "", 1, 512))
	for _, v := range j.VMs {
		c.Config().AddVM(v)
		if err := c.Config().SetRunning(v.Name, "n00"); err != nil {
			t.Fatal(err)
		}
	}
	c.SetWorkload("a", []Phase{{CPU: 1, Seconds: 10}})
	c.SetWorkload("b", []Phase{{CPU: 1, Seconds: 20}})
	c.Run(15)
	if c.VJobDone(j) {
		t.Fatal("vjob done while b still works")
	}
	c.Run(50)
	if !c.VJobDone(j) {
		t.Fatal("vjob not done")
	}
	if c.VJobDone(vjob.NewVJob("empty", 0)) {
		t.Fatal("empty vjob reported done")
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}
