package vjob

import (
	"encoding/json"
	"fmt"
)

// configJSON is the serialized form of a Configuration, the format
// understood by cmd/planviz and cmd/entropyd.
type configJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	VMs   []vmJSON   `json:"vms"`
}

type nodeJSON struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	Memory int    `json:"memory"`
}

type vmJSON struct {
	Name   string `json:"name"`
	VJob   string `json:"vjob,omitempty"`
	CPU    int    `json:"cpu"`
	Memory int    `json:"memory"`
	State  string `json:"state"`
	Node   string `json:"node,omitempty"`
}

// MarshalJSON encodes the configuration with nodes and VMs in
// deterministic order.
func (c *Configuration) MarshalJSON() ([]byte, error) {
	out := configJSON{}
	for _, n := range c.Nodes() {
		out.Nodes = append(out.Nodes, nodeJSON{Name: n.Name, CPU: n.CPU, Memory: n.Memory})
	}
	for _, v := range c.VMs() {
		out.VMs = append(out.VMs, vmJSON{
			Name:   v.Name,
			VJob:   v.VJob,
			CPU:    v.CPUDemand,
			Memory: v.MemoryDemand,
			State:  c.StateOf(v.Name).String(),
			Node:   c.LocationOf(v.Name),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a configuration previously produced by
// MarshalJSON (or written by hand; see cmd/planviz -example).
func (c *Configuration) UnmarshalJSON(data []byte) error {
	var in configJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*c = *NewConfiguration()
	for _, n := range in.Nodes {
		if n.Name == "" {
			// An empty node name would collide with the "no placement"
			// encoding (the omitempty on vmJSON.Node) and break the
			// round trip.
			return fmt.Errorf("vjob: node with empty name")
		}
		if n.CPU < 0 || n.Memory < 0 {
			return fmt.Errorf("vjob: node %s has negative capacity", n.Name)
		}
		c.AddNode(NewNode(n.Name, n.CPU, n.Memory))
	}
	for _, v := range in.VMs {
		if v.Name == "" {
			return fmt.Errorf("vjob: VM with empty name")
		}
		if v.CPU < 0 || v.Memory < 0 {
			return fmt.Errorf("vjob: VM %s has negative demand", v.Name)
		}
		c.AddVM(NewVM(v.Name, v.VJob, v.CPU, v.Memory))
		switch v.State {
		case "running":
			if err := c.SetRunning(v.Name, v.Node); err != nil {
				return err
			}
		case "sleeping":
			if err := c.SetSleeping(v.Name, v.Node); err != nil {
				return err
			}
		case "waiting", "":
		default:
			return fmt.Errorf("vjob: VM %s has unknown state %q", v.Name, v.State)
		}
	}
	return nil
}
