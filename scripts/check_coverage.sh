#!/bin/sh
# check_coverage.sh <go-test-output> <floors-file>
#
# Enforces the per-package coverage floors of the floors file against
# the `go test -coverprofile` output: every listed package must appear
# in the output with a coverage percentage at or above its floor.
# Floors are deliberately a few points below current coverage — they
# catch test-stripping PRs, not normal fluctuation.
set -eu

out=$1
floors=$2
fail=0

while read -r pkg floor; do
	case "$pkg" in
	'' | '#'*) continue ;;
	esac
	line=$(grep -E "^ok[[:space:]]+$pkg[[:space:]]" "$out" || true)
	if [ -z "$line" ]; then
		echo "coverage: package $pkg missing from test output"
		fail=1
		continue
	fi
	pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "coverage: no percentage reported for $pkg"
		fail=1
		continue
	fi
	if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p+0 >= f+0)}'; then
		echo "coverage: $pkg ${pct}% >= ${floor}%"
	else
		echo "coverage: $pkg ${pct}% is BELOW the ${floor}% floor"
		fail=1
	fi
done <"$floors"

exit $fail
