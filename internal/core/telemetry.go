package core

import (
	"sort"
	"sync"
)

// WorkerOutcome is one portfolio worker's contribution to a solve:
// which strategy it ran, how much of the tree it explored, and how
// often it improved the shared incumbent.
type WorkerOutcome struct {
	Strategy     string `json:"strategy"`
	Nodes        int64  `json:"nodes"`
	Backtracks   int64  `json:"backtracks"`
	Improvements int    `json:"improvements"`
}

// BoundPoint is one step of the incumbent-bound trajectory: the best
// known plan cost as of an offset (wall seconds) into the solve.
type BoundPoint struct {
	Seconds float64 `json:"seconds"`
	Cost    int     `json:"cost"`
}

// SolveReport is the explainability record of one optimizer
// invocation, as recorded by the loop into SolverTelemetry: what was
// solved (scope), why (the dirty cause event kind and its reconfig
// span ID), who won the portfolio race, and what the search cost.
type SolveReport struct {
	Virt        float64         `json:"virt"`
	Scope       string          `json:"scope"`             // "full" | "slice"
	Cause       string          `json:"cause,omitempty"`   // triggering event kind
	CauseID     uint64          `json:"causeId,omitempty"` // reconfig span ID (0 without a tracer)
	Winner      string          `json:"winner,omitempty"`
	Cost        int             `json:"cost"`
	Nodes       int64           `json:"nodes"`
	Backtracks  int64           `json:"backtracks"`
	WarmStart   bool            `json:"warmStart"` // a warm assignment was offered
	WarmHit     bool            `json:"warmHit"`   // ... and was still viable here
	Workers     []WorkerOutcome `json:"workers,omitempty"`
	Trajectory  []BoundPoint    `json:"trajectory,omitempty"`
	WallSeconds float64         `json:"wallSeconds"`
}

// SolverSnapshot is the aggregate view served by GET /v1/solver and
// the cwcs_portfolio_wins_total / cwcs_warm_start_* metric families.
type SolverSnapshot struct {
	Solves          int               `json:"solves"`
	Wins            map[string]uint64 `json:"wins,omitempty"`
	WarmStartHits   uint64            `json:"warmStartHits"`
	WarmStartMisses uint64            `json:"warmStartMisses"`
	NodesExplored   int64             `json:"nodesExplored"`
	Backtracks      int64             `json:"backtracks"`
	ResolveCauses   map[string]uint64 `json:"resolveCauses,omitempty"`
	Recent          []SolveReport     `json:"recent,omitempty"`
}

// SolverTelemetry aggregates search telemetry across solves: strategy
// win counts, warm-start hit/miss tallies, explored-node and
// backtrack totals, per-cause re-solve counts, and a bounded ring of
// recent per-solve reports. It carries its own lock, so HTTP handlers
// read it without stopping the loop, and a nil *SolverTelemetry is
// inert — every method is nil-safe and allocation-free, mirroring the
// obs tracer discipline.
type SolverTelemetry struct {
	mu     sync.Mutex
	solves int
	wins   map[string]uint64
	hits   uint64
	misses uint64
	nodes  int64
	fails  int64
	causes map[string]uint64
	recent []SolveReport
	next   int
	keep   int
}

// DefaultSolveRing bounds the recent-report ring when no size is
// given.
const DefaultSolveRing = 64

// NewSolverTelemetry builds a telemetry aggregate keeping the last
// `keep` per-solve reports (DefaultSolveRing when keep <= 0).
func NewSolverTelemetry(keep int) *SolverTelemetry {
	if keep <= 0 {
		keep = DefaultSolveRing
	}
	return &SolverTelemetry{
		wins:   make(map[string]uint64),
		causes: make(map[string]uint64),
		recent: make([]SolveReport, 0, keep),
		keep:   keep,
	}
}

// RecordSolve folds one solve's report into the aggregate. Nil-safe:
// on a nil receiver the report is discarded without an allocation.
func (t *SolverTelemetry) RecordSolve(r SolveReport) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.solves++
	if r.Winner != "" {
		t.wins[r.Winner]++
	}
	if r.WarmStart {
		if r.WarmHit {
			t.hits++
		} else {
			t.misses++
		}
	}
	t.nodes += r.Nodes
	t.fails += r.Backtracks
	if r.Cause != "" {
		t.causes[r.Cause]++
	}
	if len(t.recent) < t.keep {
		t.recent = append(t.recent, r)
	} else {
		t.recent[t.next] = r
	}
	t.next = (t.next + 1) % t.keep
}

// Snapshot copies the aggregate state. Recent reports come oldest
// first. Nil-safe: a nil receiver yields the zero snapshot.
func (t *SolverTelemetry) Snapshot() SolverSnapshot {
	if t == nil {
		return SolverSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := SolverSnapshot{
		Solves:          t.solves,
		WarmStartHits:   t.hits,
		WarmStartMisses: t.misses,
		NodesExplored:   t.nodes,
		Backtracks:      t.fails,
	}
	if len(t.wins) > 0 {
		snap.Wins = make(map[string]uint64, len(t.wins))
		for k, v := range t.wins {
			snap.Wins[k] = v
		}
	}
	if len(t.causes) > 0 {
		snap.ResolveCauses = make(map[string]uint64, len(t.causes))
		for k, v := range t.causes {
			snap.ResolveCauses[k] = v
		}
	}
	if n := len(t.recent); n > 0 {
		snap.Recent = make([]SolveReport, 0, n)
		start := 0
		if n == t.keep {
			start = t.next
		}
		for i := 0; i < n; i++ {
			snap.Recent = append(snap.Recent, t.recent[(start+i)%n])
		}
	}
	return snap
}

// WinRates orders the strategy win counts for display: one
// (strategy, wins) pair per strategy, most wins first, label-sorted
// on ties. Nil-safe.
func (t *SolverTelemetry) WinRates() []WorkerOutcome {
	snap := t.Snapshot()
	if len(snap.Wins) == 0 {
		return nil // keeps the nil receiver allocation-free
	}
	out := make([]WorkerOutcome, 0, len(snap.Wins))
	for s, w := range snap.Wins {
		out = append(out, WorkerOutcome{Strategy: s, Improvements: int(w)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Improvements != out[j].Improvements {
			return out[i].Improvements > out[j].Improvements
		}
		return out[i].Strategy < out[j].Strategy
	})
	return out
}
