package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cwcs/internal/core"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// -update rewrites the golden files, for deliberate format changes:
//
//	go test ./cmd/planviz -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenRepairedPlan pins the rendering of a spliced (repaired)
// plan: a failed migration's slice is re-solved and the fresh slice
// plan is merged with the untouched remainder. The exact pool layout
// and per-action cost lines must stay stable — planviz output is what
// operators diff when auditing a repair.
func TestGoldenRepairedPlan(t *testing.T) {
	cfg := vjob.NewConfiguration()
	for _, n := range []string{"n1", "n2", "n3", "n4"} {
		cfg.AddNode(vjob.NewNode(n, 1, 4096))
	}
	a := vjob.NewVM("vm-a", "ja", 1, 2048)
	b := vjob.NewVM("vm-b", "jb", 1, 1024)
	c := vjob.NewVM("vm-c", "jc", 1, 512)
	for _, v := range []*vjob.VM{a, b, c} {
		cfg.AddVM(v)
	}
	for vm, n := range map[string]string{"vm-a": "n1", "vm-b": "n3", "vm-c": "n3"} {
		if err := cfg.SetRunning(vm, n); err != nil {
			t.Fatal(err)
		}
	}

	// The executing plan still owed: migrate vm-a off n1 (clean
	// region) and pack vm-b onto n4 (dirty region: its first attempt
	// failed). The repair re-solves the {n3,n4} slice and splices the
	// fresh migration against the kept remainder.
	remaining := &plan.Plan{Src: cfg, Pools: []plan.Pool{
		{&plan.Migration{Machine: a, Src: "n1", Dst: "n2"}},
		{&plan.Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	fresh := &plan.Plan{Pools: []plan.Pool{
		{&plan.Migration{Machine: b, Src: "n3", Dst: "n4"}},
	}}
	dirtyNodes := map[string]bool{"n3": true, "n4": true}
	dirtyVMs := map[string]bool{"vm-b": true, "vm-c": true}
	repaired, err := plan.Repair(cfg, remaining, dirtyNodes, dirtyVMs, fresh)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "repaired_plan.golden", indent(repaired.String()))
}

// TestVectorSpec pins the multi-dimensional input path: extra
// dimensions parse into capacities/demands, drive the solve (two
// net-heavy VMs must separate), and bad extras are rejected with the
// same strictness as the vjob wire format.
func TestVectorSpec(t *testing.T) {
	v, err := vector("node n", 2, 4096, map[string]int{"net": 100, "disk": 50})
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(resources.NetBW) != 100 || v.Get(resources.DiskIO) != 50 || v.Get(resources.CPU) != 2 {
		t.Fatalf("vector = %s", v)
	}
	for _, bad := range []map[string]int{
		{"tape": 1}, {"cpu": 1}, {"net": -1},
	} {
		if _, err := vector("x", 1, 1, bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
	if _, err := vector("x", -1, 1, nil); err == nil {
		t.Fatal("accepted negative cpu")
	}

	spec := clusterSpec{}
	data := []byte(`{
	  "nodes": [{"name":"n1","cpu":4,"memory":8192,"resources":{"net":100}},
	            {"name":"n2","cpu":4,"memory":8192,"resources":{"net":100}}],
	  "vms": [{"name":"v1","vjob":"j","cpu":1,"memory":512,"resources":{"net":60},"state":"running","node":"n1"},
	          {"name":"v2","vjob":"j","cpu":1,"memory":512,"resources":{"net":60},"state":"running","node":"n1"}]}`)
	if err := json.Unmarshal(data, &spec); err != nil {
		t.Fatal(err)
	}
	cfg, targets, err := build(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Optimizer{Workers: 1}.Solve(core.Problem{Src: cfg, Target: targets})
	if err != nil {
		t.Fatal(err)
	}
	// One migration of a VM with a 60 Mbit/s net demand: cost
	// plan.TransferSize = 512 + 60.
	if res.Cost != 572 || res.Dst.HostOf("v1") == res.Dst.HostOf("v2") {
		t.Fatalf("net-aware solve: cost=%d hosts %s/%s", res.Cost, res.Dst.HostOf("v1"), res.Dst.HostOf("v2"))
	}
}
