package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cwcs/internal/resources"
)

const sampleTrace = `# demo trace
{"v":1,"at":0,"event":"arrive","vm":"web-00","vjob":"web","demand":{"cpu":1,"memory":512}}
{"v":1,"at":0,"event":"arrive","vm":"web-01","vjob":"web","demand":{"cpu":1,"memory":512}}

{"v":1,"at":300,"event":"load","vm":"web-00","demand":{"cpu":2,"memory":512}}
{"v":1,"at":900,"event":"depart","vm":"web-01"}
`

func TestDecode(t *testing.T) {
	recs, err := Decode(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want 4", len(recs))
	}
	if recs[0].Event != EventArrive || recs[0].VM != "web-00" || recs[0].VJob != "web" {
		t.Fatalf("first record = %+v", recs[0])
	}
	if recs[2].Event != EventLoad || recs[2].Demand["cpu"] != 2 {
		t.Fatalf("load record = %+v", recs[2])
	}
	if recs[3].Event != EventDepart || recs[3].At != 900 {
		t.Fatalf("depart record = %+v", recs[3])
	}
}

func TestDecodeRejects(t *testing.T) {
	arrive := `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}` + "\n"
	tests := []struct {
		name, input, wantErr string
	}{
		{"not json", "nonsense\n", "line 1"},
		{"wrong version", `{"v":2,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}`, "version 2"},
		{"unknown field", `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1},"x":1}`, "unknown field"},
		{"unknown event", `{"v":1,"at":0,"event":"boom","vm":"a"}`, "unknown event"},
		{"missing vm", `{"v":1,"at":0,"event":"arrive","vjob":"j","demand":{"cpu":1}}`, "missing vm"},
		{"negative time", `{"v":1,"at":-1,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}`, "negative time"},
		{"time backwards", `{"v":1,"at":5,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}` + "\n" + `{"v":1,"at":4,"event":"depart","vm":"a"}`, "backwards"},
		{"unknown kind", `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"gpu":1}}`, "gpu"},
		{"negative demand", `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":-1}}`, "negative cpu demand"},
		{"arrive without vjob", `{"v":1,"at":0,"event":"arrive","vm":"a","demand":{"cpu":1}}`, "without vjob"},
		{"arrive without demand", `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j"}`, "without demand"},
		{"double arrive", arrive + arrive, "arrives twice"},
		{"arrive after depart", arrive + `{"v":1,"at":1,"event":"depart","vm":"a"}` + "\n" + `{"v":1,"at":2,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}`, "arrives twice"},
		{"load for unknown vm", `{"v":1,"at":0,"event":"load","vm":"a","demand":{"cpu":1}}`, "unknown or departed"},
		{"load without demand", arrive + `{"v":1,"at":1,"event":"load","vm":"a"}`, "without demand"},
		{"depart for unknown vm", `{"v":1,"at":0,"event":"depart","vm":"a"}`, "unknown or departed"},
		{"double depart", arrive + `{"v":1,"at":1,"event":"depart","vm":"a"}` + "\n" + `{"v":1,"at":2,"event":"depart","vm":"a"}`, "unknown or departed"},
		{"depart with demand", arrive + `{"v":1,"at":1,"event":"depart","vm":"a","demand":{"cpu":1}}`, "with demand"},
		{"trailing data", `{"v":1,"at":0,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}} {"v":1}`, "trailing"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	recs, err := Decode(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, recs); err != nil {
		t.Fatal(err)
	}
	again, err := Decode(&buf)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !reflect.DeepEqual(recs, again) {
		t.Fatalf("round trip changed records:\n%v\n%v", recs, again)
	}
}

func TestRecordVector(t *testing.T) {
	rec := Record{Demand: map[string]int{"cpu": 2, "memory": 512}}
	v, err := rec.Vector()
	if err != nil {
		t.Fatal(err)
	}
	if v.Get(resources.CPU) != 2 || v.Get(resources.Memory) != 512 {
		t.Fatalf("vector = %v", v)
	}
	if _, err := (Record{Demand: map[string]int{"gpu": 1}}).Vector(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSortRecords(t *testing.T) {
	recs := []Record{
		{At: 5, Event: EventDepart, VM: "b"},
		{At: 5, Event: EventArrive, VM: "c"},
		{At: 0, Event: EventArrive, VM: "b"},
		{At: 5, Event: EventLoad, VM: "a"},
		{At: 0, Event: EventArrive, VM: "a"},
	}
	SortRecords(recs)
	got := make([]string, len(recs))
	for i, r := range recs {
		got[i] = r.Event + ":" + r.VM
	}
	want := []string{"arrive:a", "arrive:b", "arrive:c", "load:a", "depart:b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// FuzzTraceDecode pins that Decode rejects malformed input with an
// error, never a panic, and that whatever it accepts re-encodes and
// re-decodes to the same records.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(sampleTrace))
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"v":1,"at":1e308,"event":"arrive","vm":"a","vjob":"j","demand":{"cpu":1}}`))
	f.Add([]byte(`{"v":1,"at":null,"event":"load"}`))
	f.Add([]byte(`{"v":1,"at":0,"event":"depart","vm":"a","demand":{"cpu":-9}}`))
	f.Add([]byte("\x00\xff\n#\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, recs); err != nil {
			t.Fatalf("accepted records failed to encode: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("encoded records failed to re-decode: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
	})
}
