package vjob

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := NewConfiguration()
	c.AddNode(NewNode("n1", 2, 4096))
	c.AddNode(NewNode("n2", 2, 4096))
	c.AddVM(NewVM("a", "j1", 1, 1024))
	c.AddVM(NewVM("b", "j1", 0, 512))
	c.AddVM(NewVM("w", "j2", 1, 256))
	mustRun(t, c, "a", "n1")
	if err := c.SetSleeping("b", "n2"); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Configuration
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !c.Equal(&back) {
		t.Fatalf("round trip lost state:\n%s\nvs\n%s", c, &back)
	}
	if back.VM("a").VJob != "j1" || back.VM("a").MemoryDemand != 1024 {
		t.Fatal("VM attributes lost")
	}
	if back.StateOf("w") != Waiting {
		t.Fatal("waiting state lost")
	}
	if back.ImageHostOf("b") != "n2" {
		t.Fatal("image host lost")
	}
}

func TestJSONDeterministic(t *testing.T) {
	c := NewConfiguration()
	for _, n := range []string{"n3", "n1", "n2"} {
		c.AddNode(NewNode(n, 1, 1024))
	}
	a, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("marshalling not deterministic")
	}
	if !strings.Contains(string(a), `"n1"`) {
		t.Fatalf("json = %s", a)
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"nodes":[{"name":"n","cpu":-1,"memory":0}]}`,
		`{"vms":[{"name":"v","cpu":0,"memory":-1}]}`,
		`{"nodes":[{"name":"n","cpu":1,"memory":10}],"vms":[{"name":"v","cpu":1,"memory":1,"state":"flying"}]}`,
		`{"vms":[{"name":"v","cpu":1,"memory":1,"state":"running","node":"ghost"}]}`,
	}
	for _, tc := range cases {
		var c Configuration
		if err := json.Unmarshal([]byte(tc), &c); err == nil {
			t.Errorf("accepted %s", tc)
		}
	}
}

func TestJSONOverwritesReceiver(t *testing.T) {
	var c Configuration
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"x","cpu":1,"memory":2}]}`), &c); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"y","cpu":1,"memory":2}]}`), &c); err != nil {
		t.Fatal(err)
	}
	if c.Node("x") != nil || c.Node("y") == nil {
		t.Fatal("receiver not reset on unmarshal")
	}
}
