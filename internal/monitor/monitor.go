// Package monitor is the Ganglia substitute: it periodically samples
// the simulated cluster's resource usage — the CPU and memory demands
// of the running VMs against the total capacities — and the vjob state
// mix, producing the time series behind Figure 13.
package monitor

import (
	"fmt"
	"strings"

	"cwcs/internal/sim"
	"cwcs/internal/vjob"
)

// Sample is one observation of the cluster.
type Sample struct {
	// T is the virtual time of the observation, in seconds.
	T float64
	// UsedCPU / CapCPU are the processing units demanded by running
	// VMs and the cluster capacity.
	UsedCPU, CapCPU int
	// UsedMem / CapMem are memory (MiB) demanded vs. capacity.
	UsedMem, CapMem int
	// Running, Sleeping, Waiting count VMs per state.
	Running, Sleeping, Waiting int
}

// CPUPercent returns CPU utilization in percent.
func (s Sample) CPUPercent() float64 {
	if s.CapCPU == 0 {
		return 0
	}
	return 100 * float64(s.UsedCPU) / float64(s.CapCPU)
}

// MemGiB returns used memory in GiB, the unit of Figure 13a.
func (s Sample) MemGiB() float64 { return float64(s.UsedMem) / 1024 }

// Recorder samples a cluster at a fixed interval.
type Recorder struct {
	// Interval between samples, in virtual seconds.
	Interval float64
	// Samples accumulates observations in time order.
	Samples []Sample

	stopped bool
}

// Observe takes one sample of the configuration right now.
func Observe(t float64, cfg *vjob.Configuration) Sample {
	s := Sample{T: t}
	for _, n := range cfg.Nodes() {
		s.CapCPU += n.CPU()
		s.CapMem += n.Memory()
		s.UsedCPU += cfg.UsedCPU(n.Name)
		s.UsedMem += cfg.UsedMemory(n.Name)
	}
	s.Running = len(cfg.InState(vjob.Running))
	s.Sleeping = len(cfg.InState(vjob.Sleeping))
	s.Waiting = len(cfg.InState(vjob.Waiting))
	return s
}

// Attach starts periodic sampling on the cluster until Stop is called.
func (r *Recorder) Attach(c *sim.Cluster) {
	if r.Interval <= 0 {
		r.Interval = 10 // the paper's monitoring refresh is ~10 s
	}
	var tick func()
	tick = func() {
		if r.stopped {
			return
		}
		r.Samples = append(r.Samples, Observe(c.Now(), c.Config()))
		c.Schedule(c.Now()+r.Interval, tick)
	}
	tick()
}

// Stop ends the sampling (the pending tick becomes a no-op).
func (r *Recorder) Stop() { r.stopped = true }

// CSV renders the samples with a header, one line per sample.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("t_sec,cpu_used,cpu_cap,cpu_pct,mem_used_mib,mem_cap_mib,running,sleeping,waiting\n")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%.0f,%d,%d,%.1f,%d,%d,%d,%d,%d\n",
			s.T, s.UsedCPU, s.CapCPU, s.CPUPercent(), s.UsedMem, s.CapMem, s.Running, s.Sleeping, s.Waiting)
	}
	return b.String()
}

// MeanCPUPercent averages CPU utilization over samples taken before
// the given horizon (0 means all samples).
func (r *Recorder) MeanCPUPercent(until float64) float64 {
	sum, n := 0.0, 0
	for _, s := range r.Samples {
		if until > 0 && s.T > until {
			break
		}
		sum += s.CPUPercent()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
