package cp

import (
	"errors"
	"testing"
)

// packingProblem posts a Packing over nItems items and returns the
// assignment variables.
func packingProblem(s *Solver, weights, caps []int, knapsack bool) []*IntVar {
	items := make([]*IntVar, len(weights))
	bins := rangeVals(len(caps))
	for i := range items {
		items[i] = s.NewEnumVar("item", bins)
	}
	s.Post(&Packing{Name: "mem", Items: items, Weights: weights, Capacity: caps, UseKnapsack: knapsack})
	return items
}

func TestPackingFeasible(t *testing.T) {
	s := NewSolver()
	items := packingProblem(s, []int{5, 5, 5, 5}, []int{10, 10}, false)
	sol, err := s.Solve(Options{FirstFail: true})
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]int{}
	for i, v := range items {
		load[sol.MustValue(v)] += []int{5, 5, 5, 5}[i]
	}
	for b, l := range load {
		if l > 10 {
			t.Fatalf("bin %d overloaded: %d", b, l)
		}
	}
}

func TestPackingInfeasible(t *testing.T) {
	s := NewSolver()
	packingProblem(s, []int{8, 8, 8}, []int{10, 10}, false)
	if _, err := s.Solve(Options{}); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestPackingPrunesTooHeavy(t *testing.T) {
	s := NewSolver()
	items := packingProblem(s, []int{9, 4}, []int{10, 5}, false)
	if err := s.propagate(); err != nil {
		t.Fatal(err)
	}
	// Item 0 (weight 9) cannot go to bin 1 (cap 5).
	if items[0].Contains(1) {
		t.Fatal("bin 1 not pruned for heavy item")
	}
}

func TestPackingZeroWeightIgnored(t *testing.T) {
	s := NewSolver()
	items := packingProblem(s, []int{0, 0, 0}, []int{0}, false)
	sol, err := s.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range items {
		if sol.MustValue(v) != 0 {
			t.Fatal("zero-weight item rejected from zero-cap bin")
		}
	}
}

// TestKnapsackBoundDetectsDeadEndEarly: three items of weight 6 on two
// bins of capacity 10. The plain sum bound sees 18 <= 20 free and only
// fails during search; the DP bound proves at the root that each bin
// absorbs at most one item (reachable loads {0,6,12->pruned}), so the
// total absorbable is 12 < 18.
func TestKnapsackBoundDetectsDeadEndEarly(t *testing.T) {
	plain := NewSolver()
	packingProblem(plain, []int{6, 6, 6}, []int{10, 10}, false)
	if err := plain.propagate(); err != nil {
		t.Fatal("plain bound failed at root; premise broken")
	}

	dp := NewSolver()
	packingProblem(dp, []int{6, 6, 6}, []int{10, 10}, true)
	if err := dp.propagate(); !errors.Is(err, ErrFailed) {
		t.Fatalf("knapsack bound missed the root dead end: %v", err)
	}

	// Both must agree the problem is infeasible overall.
	if _, err := plain.Solve(Options{}); !errors.Is(err, ErrFailed) {
		t.Fatalf("plain solver found impossible solution: %v", err)
	}
}

func TestKnapsackAgreesOnFeasible(t *testing.T) {
	for _, knap := range []bool{false, true} {
		s := NewSolver()
		packingProblem(s, []int{6, 6, 4, 4}, []int{10, 10}, knap)
		if _, err := s.Solve(Options{FirstFail: true}); err != nil {
			t.Fatalf("knapsack=%v: %v", knap, err)
		}
	}
}

func TestPackingOverloadDetected(t *testing.T) {
	s := NewSolver()
	items := packingProblem(s, []int{7, 7}, []int{10, 20}, false)
	if err := s.Assign(items[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign(items[1], 0); err != nil {
		t.Fatal(err)
	}
	if err := s.propagate(); !errors.Is(err, ErrFailed) {
		t.Fatalf("overload not detected: %v", err)
	}
}

// TestMinimizePackingOptimum: minimize the index of the highest bin
// used, a classic makespan-flavored objective over the packing. The
// optimum packs everything into bin 0.
func TestMinimizePackingOptimum(t *testing.T) {
	s := NewSolver()
	items := packingProblem(s, []int{4, 3, 3}, []int{10, 10, 10}, false)
	obj := s.NewIntVar("maxbin", 0, 2)
	s.Post(&FuncConstraint{On: append([]*IntVar{obj}, items...), Run: func(s *Solver) error {
		// obj >= max over items of min-bin still possible; prune item
		// bins above obj's max.
		for _, v := range items {
			if err := s.RemoveBelow(obj, v.Min()); err != nil {
				return err
			}
			if err := s.RemoveAbove(v, obj.Max()); err != nil {
				return err
			}
		}
		return nil
	}})
	sol, err := s.Minimize(obj, Options{Vars: items, FirstFail: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range items {
		if sol.MustValue(v) != 0 {
			t.Fatalf("item on bin %d, optimum packs all on bin 0", sol.MustValue(v))
		}
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %d", sol.Objective)
	}
}

func TestFuncConstraint(t *testing.T) {
	s := NewSolver()
	x := s.NewEnumVar("x", rangeVals(5))
	calls := 0
	fc := &FuncConstraint{On: []*IntVar{x}, Run: func(s *Solver) error {
		calls++
		return s.RemoveValue(x, 0)
	}}
	s.Post(fc)
	if got := len(fc.Vars()); got != 1 {
		t.Fatalf("Vars len = %d", got)
	}
	if err := s.propagate(); err != nil {
		t.Fatal(err)
	}
	if x.Contains(0) || calls == 0 {
		t.Fatal("func constraint did not run")
	}
}
