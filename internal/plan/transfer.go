package plan

import (
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// This file is the plan-level half of the bandwidth-aware context
// switch model (DESIGN.md §9): what an in-flight transfer weighs on the
// `net` dimension of its endpoints, and how much data an action that
// moves a VM must push. The duration model (internal/duration) owns the
// time side — how long the push takes at a given bandwidth — and its
// Default() calibration implies exactly the nominal wire rates below,
// so the planner's admission arithmetic and the simulator's clock agree.

// Nominal wire rates, in Mbit/s, of the three transfer kinds, as
// implied by the §2.3 duration calibration (1 MiB of image is modeled
// as 8 Mbit on the wire; the binary/decimal 4.9% wrinkle is ignored):
//
//   - a live migration streams pre-copy rounds at the memory-copy rate
//     the calibrated 0.01 s/MiB corresponds to: 800 Mbit/s — a nearly
//     saturated GigE NIC, which is what the paper's testbed measures;
//   - a remote suspend pushes the image with scp at the disk-bound
//     0.1 s/MiB of the calibration: 80 Mbit/s;
//   - a remote resume pulls at 0.08 s/MiB: 100 Mbit/s.
//
// These are the demands a transfer places on BOTH endpoints' `net`
// dimension while it executes. On a node whose NIC is smaller than the
// rate, the transfer claims the whole NIC (clamping below).
const (
	// MigrateRateMbps is a live migration's nominal wire rate.
	MigrateRateMbps = 800
	// SuspendPushRateMbps is a remote suspend's image-push rate.
	SuspendPushRateMbps = 80
	// ResumePushRateMbps is a remote resume's image-pull rate.
	ResumePushRateMbps = 100
)

// TransferSize returns the data volume, in MiB, that an action moving
// this VM must push across nodes: the memory image (Table 1's Dm) plus
// the transfer-relevant extra dimensions. A VM with a high sustained
// disk rate has a correspondingly larger disk working set riding in
// its suspended image, and a net-chatty VM dirties pages faster during
// a live migration's pre-copy rounds, so both extra demands fold into
// the moved volume. The fold is deliberately unit-loose — §4.2 costs
// are an ordering, not a byte count — and vanishes on the paper's 2-D
// instances: with zero extra demands TransferSize is exactly
// MemoryDemand, keeping legacy costs byte-identical.
func TransferSize(v *vjob.VM) int {
	return v.MemoryDemand() + v.Demand.Get(resources.NetBW) + v.Demand.Get(resources.DiskIO)
}

// TransferDemand is the network footprint of one in-flight action: the
// two endpoints the stream connects and the nominal rate it runs at
// when the NICs do not constrain it.
type TransferDemand struct {
	// Src and Dst are the nodes the data leaves and reaches.
	Src, Dst string
	// Rate is the nominal wire rate in Mbit/s.
	Rate int
}

// ClampedRate returns the demand the transfer meters on a node with
// the given NIC capacity (Mbit/s): the nominal rate, clamped to the
// NIC — a transfer cannot claim more than the link offers, so a lone
// migration into a NIC-poor node is slow, not oversubscribed. A zero
// or negative capacity reports zero demand: nodes without a modeled
// NIC (the paper's 2-D instances) meter nothing and the whole
// bandwidth model compiles away.
func (t TransferDemand) ClampedRate(nicMbps int) int {
	if nicMbps <= 0 {
		return 0
	}
	if t.Rate < nicMbps {
		return t.Rate
	}
	return nicMbps
}

// TransferDemandOf returns the network footprint of the action while
// it executes, or ok=false when the action moves nothing between nodes
// (run, stop, local suspend, local resume).
func TransferDemandOf(a Action) (t TransferDemand, ok bool) {
	switch a := a.(type) {
	case *Migration:
		return TransferDemand{Src: a.Src, Dst: a.Dst, Rate: MigrateRateMbps}, true
	case *Suspend:
		if a.To == a.On {
			return TransferDemand{}, false
		}
		return TransferDemand{Src: a.On, Dst: a.To, Rate: SuspendPushRateMbps}, true
	case *Resume:
		if a.Local() {
			return TransferDemand{}, false
		}
		return TransferDemand{Src: a.From, Dst: a.On, Rate: ResumePushRateMbps}, true
	default:
		return TransferDemand{}, false
	}
}

// transferBook tracks, while a pool is assembled or replayed, the net
// demand the pool's transfers have already claimed per node, and
// admits or refuses the next transfer against the NIC capacities of
// the configuration. Nodes with no modeled NIC admit everything.
type transferBook struct {
	cfg  *vjob.Configuration
	used map[string]int
}

func newTransferBook(cfg *vjob.Configuration) *transferBook {
	return &transferBook{cfg: cfg, used: make(map[string]int)}
}

// nicOf returns the node's NIC capacity, 0 when the node is unknown
// (an action endpoint outside the configuration meters nothing; the
// feasibility replay will reject it on its own terms).
func (b *transferBook) nicOf(node string) int {
	n := b.cfg.Node(node)
	if n == nil {
		return 0
	}
	return n.Capacity.Get(resources.NetBW)
}

// fits reports whether the action's transfer fits the remaining NIC
// headroom on both endpoints. Actions without a transfer always fit. A
// transfer alone in a pool always fits: its demand is clamped to each
// NIC, so only CONCURRENT transfers can exceed one.
func (b *transferBook) fits(a Action) bool {
	t, ok := TransferDemandOf(a)
	if !ok {
		return true
	}
	for _, ep := range []string{t.Src, t.Dst} {
		nic := b.nicOf(ep)
		if nic <= 0 {
			continue
		}
		if b.used[ep]+t.ClampedRate(nic) > nic {
			return false
		}
	}
	return true
}

// admit books the action's transfer demand on both endpoints.
func (b *transferBook) admit(a Action) {
	t, ok := TransferDemandOf(a)
	if !ok {
		return
	}
	for _, ep := range []string{t.Src, t.Dst} {
		if nic := b.nicOf(ep); nic > 0 {
			b.used[ep] += t.ClampedRate(nic)
		}
	}
}
