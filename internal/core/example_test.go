package core_test

import (
	"fmt"

	"cwcs/internal/core"
	"cwcs/internal/vjob"
)

// Example runs one cluster-wide context switch: an overloaded node is
// repaired by migrating the cheapest VM away.
func Example() {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n1", 1, 8192))
	cfg.AddNode(vjob.NewNode("n2", 1, 8192))
	big := vjob.NewVM("big", "a", 1, 2048)
	small := vjob.NewVM("small", "b", 1, 512)
	cfg.AddVM(big)
	cfg.AddVM(small)
	_ = cfg.SetRunning("big", "n1")
	_ = cfg.SetRunning("small", "n1") // two busy VMs, one CPU: overloaded

	res, err := core.Optimizer{}.Solve(core.Problem{
		Src:    cfg,
		Target: map[string]vjob.State{"a": vjob.Running, "b": vjob.Running},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(res.Plan)
	fmt.Println("viable:", res.Dst.Viable())
	// Output:
	// pool 0 (cost 512):
	//   migrate(small,n1,n2) (local 512, total 512)
	// plan cost: 512
	// viable: true
}

// ExampleOptimizer_Solve_rules keeps two replicas apart with a Spread
// rule while starting them.
func ExampleOptimizer_Solve_rules() {
	cfg := vjob.NewConfiguration()
	cfg.AddNode(vjob.NewNode("n1", 2, 8192))
	cfg.AddNode(vjob.NewNode("n2", 2, 8192))
	for _, name := range []string{"db-0", "db-1"} {
		cfg.AddVM(vjob.NewVM(name, "db", 1, 1024))
	}

	res, err := core.Optimizer{}.Solve(core.Problem{
		Src:    cfg,
		Target: map[string]vjob.State{"db": vjob.Running},
		Rules:  []core.PlacementRule{core.Spread{VMs: []string{"db-0", "db-1"}}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("distinct hosts:", res.Dst.HostOf("db-0") != res.Dst.HostOf("db-1"))
	// Output:
	// distinct hosts: true
}
