package experiments

import (
	"strings"
	"testing"
)

// quickRepairStormOptions shrinks the storm study to one rate on the
// quick churn cluster, with the structural audit on.
func quickRepairStormOptions(rates ...float64) RepairStormOptions {
	churn := quickChurnOptions()
	churn.WatchInvariants = true
	return RepairStormOptions{Churn: churn, Rates: rates}
}

// TestRepairStormTenPercent is the failure-storm loop test of the
// cross-slice repair fix (run under -race by the race target): at 10%
// action-failure rate the widened loop must keep the structural
// invariants intact, convert fallbacks into splices (FailedRepairs
// bounded by the widening-off run), and still converge.
func TestRepairStormTenPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("storm study solves repeatedly")
	}
	rows := RepairStormStudy(quickRepairStormOptions(0.10))
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want off/on pair", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Widen || !on.Widen {
		t.Fatalf("cell order wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Breaches != 0 {
			t.Errorf("widen=%v: %d structural invariant breaches", r.Widen, r.Breaches)
		}
		if r.FinalViolations != 0 {
			t.Errorf("widen=%v: ended with %d capacity violations", r.Widen, r.FinalViolations)
		}
	}
	// The storm must actually exercise the repair path on both sides…
	if off.Repairs+off.FailedRepairs == 0 {
		t.Fatalf("storm never reached the repair path: %+v", off)
	}
	// …and widening must bound FailedRepairs by the refuse-and-fall-
	// back baseline while never splicing less.
	if on.FailedRepairs > off.FailedRepairs {
		t.Errorf("widening increased failed repairs: %d > %d", on.FailedRepairs, off.FailedRepairs)
	}
	if on.Repairs < off.Repairs {
		t.Errorf("widening reduced successful splices: %d < %d", on.Repairs, off.Repairs)
	}
	t.Logf("off: %+v", off)
	t.Logf("on:  %+v", on)
}

func TestRepairStormRendering(t *testing.T) {
	rows := []RepairStormResult{
		{Rate: 0.10, Widen: false, Repairs: 12, FailedRepairs: 10, FullSolves: 3, ViolationSeconds: 900, Switches: 20},
		{Rate: 0.10, Widen: true, Repairs: 21, WidenedRepairs: 8, RepairExpansions: 11, FailedRepairs: 1, ViolationSeconds: 700, Switches: 20},
	}
	table := RepairStormTable(rows)
	if !strings.Contains(table, "90% of former failed repairs recovered") {
		t.Fatalf("table missing the recovered line:\n%s", table)
	}
	if got := RecoveredFraction(rows[0], rows[1]); got != 0.9 {
		t.Fatalf("RecoveredFraction = %.2f, want 0.90", got)
	}
	// Degenerate pairs must not divide by zero or report recovery.
	if got := RecoveredFraction(RepairStormResult{}, RepairStormResult{}); got != 0 {
		t.Fatalf("RecoveredFraction(zero) = %.2f", got)
	}
}

// TestGoldenRepairStormCSV pins the storm CSV schema from synthetic
// rows, like the figure exports.
func TestGoldenRepairStormCSV(t *testing.T) {
	rows := []RepairStormResult{
		{Rate: 0.05, Widen: false, Repairs: 9, FailedRepairs: 4, FullSolves: 2, ViolationSeconds: 512.5, Switches: 14,
			TopVJob: "vjob002", TopVJobSeconds: 256.5, TopNode: "node011", TopNodeSeconds: 300},
		{Rate: 0.05, Widen: true, Repairs: 13, WidenedRepairs: 3, RepairExpansions: 4, FailedRepairs: 0, ViolationSeconds: 430, Switches: 14,
			TopVJob: "vjob002", TopVJobSeconds: 215, TopNode: "node011", TopNodeSeconds: 240},
		{Rate: 0.20, Widen: false, Repairs: 15, FailedRepairs: 22, FullSolves: 9, ViolationSeconds: 2048, FinalViolations: 1, Switches: 31},
		{Rate: 0.20, Widen: true, Repairs: 33, WidenedRepairs: 12, RepairExpansions: 19, FailedRepairs: 4, FullSolves: 1, ViolationSeconds: 1536, Switches: 31},
	}
	checkGolden(t, "repairstorm.csv.golden", RepairStormCSV(rows))
}

// BenchmarkRepairStorm is the regress-gated cost of the widened storm
// cell: the quick scenario at 10% failure rate with widening on.
func BenchmarkRepairStorm(b *testing.B) {
	opts := quickRepairStormOptions(0.10)
	co := opts.Churn
	co.FailureRate = 0.10
	var last ChurnResult
	for i := 0; i < b.N; i++ {
		last = RunChurn(true, co)
	}
	b.ReportMetric(float64(last.Stats.Repairs), "repairs")
	b.ReportMetric(float64(last.Stats.FailedRepairs), "failed-repairs")
	if last.Breaches != 0 {
		b.Fatalf("storm run breached structural invariants: %d", last.Breaches)
	}
}
