package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/duration"
	"cwcs/internal/plan"
	"cwcs/internal/resources"
	"cwcs/internal/sched"
	"cwcs/internal/sim"
	"cwcs/internal/vjob"
	"cwcs/internal/workload"
)

// MigrationOptions parameterizes the bandwidth-aware context-switch
// study (DESIGN.md §9): a NIC-heterogeneous cluster — most nodes carry
// the calibration's GigE link, a fraction sit on an aging 100 Mbit/s
// rack — is reconfigured by the same consolidation decision twice, once
// with the transfer-blind planner (pre-fix behavior: pools ignore what
// concurrent migrations do to a NIC) and once with the bandwidth-aware
// planner that serializes NIC-conflicting transfers. Each plan then
// executes on the metered simulator, which charges every in-flight
// transfer on both endpoints' `net` dimension and re-times it as
// concurrency changes, and the study integrates the violation exposure
// the plan caused. A fenced variant replays both sides under cross-rack
// Fence rules — the administrative response to 10x-cost inter-rack
// links — and reports the 10x-weighted wire cost both ways. No paper
// analogue: the paper's testbed is NIC-homogeneous and its §4.2 costs
// are memory-only.
type MigrationOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// NodeCPU/NodeMemory/NodeNet are per-node capacities; NodeNet is
	// the healthy NIC in Mbit/s.
	NodeCPU, NodeMemory, NodeNet int
	// NICPoorFraction of the nodes get NICPoorNet instead of NodeNet.
	NICPoorFraction float64
	NICPoorNet      int
	// VMFactor is the number of VMs generated per node.
	VMFactor float64
	// Racks partitions the node index space into equal contiguous
	// racks for the fenced variant and the cross-rack wire-cost
	// metric.
	Racks int
	// FencedVariant also runs both sides under cross-rack Fence rules.
	FencedVariant bool
	// Timeout is the per-solve budget, identical for all cells.
	Timeout time.Duration
	// Horizon is the execution cut-off in virtual seconds.
	Horizon float64
	// Seed drives configuration generation.
	Seed int64
	// Workers and Partitions configure the optimizer.
	Workers, Partitions int
}

// DefaultMigrationOptions is the BENCH_migration.json scenario: a
// 500-node cluster of which a quarter sits behind 100 Mbit/s NICs.
func DefaultMigrationOptions() MigrationOptions {
	return MigrationOptions{
		Nodes:   500,
		NodeCPU: 2, NodeMemory: 4096,
		NodeNet:         workload.DefaultNodeNet,
		NICPoorFraction: 0.25, NICPoorNet: 100,
		VMFactor:      1.5,
		Racks:         8,
		FencedVariant: true,
		// The fenced cells need the larger budget: cross-rack Fence
		// rules make the first feasible solution substantially harder
		// to find than on the open cluster (2 s suffices there).
		Timeout: 15 * time.Second,
		Horizon: 100_000,
		Seed:    1,
	}
}

// MigrationSide is one planner model executed on the metered simulator.
type MigrationSide struct {
	// Model names the side: "blind" (no transfer gating) or "aware".
	Model string
	// SolveMS is the solve wall-clock in milliseconds.
	SolveMS float64
	// Cost is the §4.2 plan cost (TransferSize-folded).
	Cost int
	// Pools and Actions describe the plan's shape; Transfers counts
	// the actions that push data between nodes, CrossRack the subset
	// whose endpoints sit in different racks.
	Pools, Actions, Transfers, CrossRack int
	// WireCost10x is the transferred volume with cross-rack transfers
	// weighted 10x — the bill an administrator of 10x-priced
	// inter-rack links reads. A fenced switch may pay a one-time
	// repatriation bill (pulling scattered vjobs into their home rack)
	// to make every later switch rack-local.
	WireCost10x int
	// MakespanS is the virtual duration of the executed switch.
	MakespanS float64
	// ViolationSeconds integrates, over the execution, the violations
	// the plan itself caused: transfer-oversubscribed NICs plus
	// capacity violations on node/dimension pairs that were clean in
	// the initial configuration. The pre-existing overload the switch
	// exists to fix is excluded, so blind and aware compare on what
	// their scheduling added. TransferViolationSeconds is the
	// NIC-oversubscription share of that integral: the transfer-aware
	// planner drives it to zero by construction.
	ViolationSeconds         float64
	TransferViolationSeconds float64
	// FailedActions counts per-action failures during execution;
	// StructuralBreaches the sim.WatchInvariants structural errors
	// (both must be zero on a healthy run).
	FailedActions, StructuralBreaches int
	// Err records a failed solve (empty on success).
	Err string
}

// MigrationVariant is one rule regime, run under both planner models.
type MigrationVariant struct {
	// Name is "open" (no placement rules) or "fenced" (cross-rack
	// Fence rules).
	Name         string
	Blind, Aware MigrationSide
}

// MigrationResult is the study's measurements.
type MigrationResult struct {
	Nodes, PoorNodes, VMs, Racks int
	Variants                     []MigrationVariant
}

// migrationWorkload regenerates the study's cluster; each cell gets a
// fresh copy (execution mutates the configuration) from the same seed.
func migrationWorkload(opts MigrationOptions) workload.Generated {
	rng := rand.New(rand.NewSource(opts.Seed))
	return workload.GenerateConfiguration(rng, workload.GenerateOptions{
		Nodes:   opts.Nodes,
		NodeCPU: opts.NodeCPU, NodeMemory: opts.NodeMemory,
		NodeNet:         opts.NodeNet,
		NICPoorFraction: opts.NICPoorFraction, NICPoorNet: opts.NICPoorNet,
		VMs: int(float64(opts.Nodes) * opts.VMFactor),
	})
}

// rackIndex maps every node name to its rack: equal contiguous slices
// of the generator's node order.
func rackIndex(cfg *vjob.Configuration, racks int) (map[string]int, [][]string) {
	nodes := cfg.Nodes()
	idx := make(map[string]int, len(nodes))
	groups := make([][]string, racks)
	for i, n := range nodes {
		r := i * racks / len(nodes)
		idx[n.Name] = r
		groups[r] = append(groups[r], n.Name)
	}
	return idx, groups
}

// rackFences builds one Fence per vjob, pinning it to the rack hosting
// the plurality of its VMs (images count too): with inter-rack links
// priced 10x, an administrator keeps each vjob's traffic rack-local.
// VJobs with no located VM (fully waiting) stay unfenced.
func rackFences(cfg *vjob.Configuration, jobs []*vjob.VJob, racks int) []core.PlacementRule {
	idx, groups := rackIndex(cfg, racks)
	var rules []core.PlacementRule
	for _, j := range jobs {
		count := make([]int, racks)
		located := false
		for _, v := range j.VMs {
			if loc := cfg.LocationOf(v.Name); loc != "" {
				count[idx[loc]]++
				located = true
			}
		}
		if !located {
			continue
		}
		best := 0
		for r, n := range count {
			if n > count[best] {
				best = r
			}
		}
		names := make([]string, len(j.VMs))
		for i, v := range j.VMs {
			names[i] = v.Name
		}
		rules = append(rules, core.Fence{VMs: names, Nodes: groups[best]})
	}
	return rules
}

// runMigrationSide solves one cell and executes its plan on the
// metered simulator.
func runMigrationSide(opts MigrationOptions, model string, blind, fenced bool) MigrationSide {
	side := MigrationSide{Model: model}
	g := migrationWorkload(opts)
	p := core.Problem{Src: g.Cfg, Target: sched.Consolidation{}.Decide(g.Cfg, g.Jobs)}
	if fenced {
		p.Rules = rackFences(g.Cfg, g.Jobs, opts.Racks)
	}
	opt := core.Optimizer{
		Timeout: opts.Timeout, Workers: opts.Workers, Partitions: opts.Partitions,
		Builder: plan.Builder{DisableTransferGating: blind},
	}
	start := time.Now()
	r, err := opt.Solve(p)
	side.SolveMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		side.Err = err.Error()
		return side
	}
	side.Cost = r.Cost
	side.Pools = len(r.Plan.Pools)
	side.Actions = r.Plan.NumActions()

	idx, _ := rackIndex(g.Cfg, opts.Racks)
	for _, pool := range r.Plan.Pools {
		for _, a := range pool {
			t, ok := plan.TransferDemandOf(a)
			if !ok {
				continue
			}
			side.Transfers++
			vol := plan.TransferSize(a.VM())
			if idx[t.Src] != idx[t.Dst] {
				side.CrossRack++
				vol *= 10
			}
			side.WireCost10x += vol
		}
	}

	// Execute on the metered simulator and integrate the violations
	// the plan itself caused: everything beyond the initial overload.
	c := sim.New(g.Cfg, duration.Default())
	inv := sim.WatchInvariants(c)
	// Baseline by node/dimension pair: a magnitude change on an
	// already-overloaded node is the pre-existing overload evolving,
	// not a violation the plan introduced.
	baseline := make(map[string]bool)
	for _, v := range g.Cfg.Violations() {
		baseline[v.Node+"/"+v.Resource] = true
	}
	total, xferTotal, lastT := 0.0, 0.0, 0.0
	lastN, lastX := 0, 0
	c.OnAdvance(func() {
		now := c.Now()
		if now > lastT {
			total += float64(lastN) * (now - lastT)
			xferTotal += float64(lastX) * (now - lastT)
			lastT = now
		}
		lastX = len(c.TransferViolations())
		lastN = lastX
		for _, v := range c.Config().Violations() {
			if !baseline[v.Node+"/"+v.Resource] {
				lastN++
			}
		}
	})
	finished := false
	drivers.Execute(c, r.Plan, func(rep drivers.Report) {
		finished = true
		side.MakespanS = rep.Duration()
		side.FailedActions = len(rep.Errs)
	})
	c.Run(opts.Horizon)
	if !finished {
		side.Err = fmt.Sprintf("execution hit the %.0f s horizon", opts.Horizon)
	}
	side.ViolationSeconds = total
	side.TransferViolationSeconds = xferTotal
	side.StructuralBreaches = inv.StructuralCount()
	return side
}

// RunMigration executes the study.
func RunMigration(opts MigrationOptions) MigrationResult {
	g := migrationWorkload(opts)
	res := MigrationResult{Nodes: opts.Nodes, VMs: g.Cfg.NumVMs(), Racks: opts.Racks}
	for _, n := range g.Cfg.Nodes() {
		if nic := n.Capacity.Get(resources.NetBW); nic == opts.NICPoorNet && nic != opts.NodeNet {
			res.PoorNodes++
		}
	}
	variants := []struct {
		name   string
		fenced bool
	}{{"open", false}}
	if opts.FencedVariant {
		variants = append(variants, struct {
			name   string
			fenced bool
		}{"fenced", true})
	}
	for _, v := range variants {
		res.Variants = append(res.Variants, MigrationVariant{
			Name:  v.name,
			Blind: runMigrationSide(opts, "blind", true, v.fenced),
			Aware: runMigrationSide(opts, "aware", false, v.fenced),
		})
	}
	return res
}

// MigrationTable renders the study.
func MigrationTable(r MigrationResult) string {
	var b strings.Builder
	b.WriteString("Bandwidth-aware context switches: transfer-blind vs transfer-aware planner\n")
	fmt.Fprintf(&b, "%d nodes (%d NIC-poor), %d VMs, %d racks\n", r.Nodes, r.PoorNodes, r.VMs, r.Racks)
	fmt.Fprintf(&b, "%-7s %-6s | %8s %9s %6s %8s %9s %9s | %10s %12s %7s\n",
		"variant", "model", "solve_ms", "cost", "pools", "makespan", "viol_sec", "xfer_sec", "transfers", "cross_rack", "wire10x")
	for _, v := range r.Variants {
		for _, s := range []MigrationSide{v.Blind, v.Aware} {
			if s.Err != "" {
				fmt.Fprintf(&b, "%-7s %-6s | FAILED: %s\n", v.Name, s.Model, s.Err)
				continue
			}
			fmt.Fprintf(&b, "%-7s %-6s | %8.0f %9d %6d %7.0fs %9.1f %9.1f | %10d %12d %7d\n",
				v.Name, s.Model, s.SolveMS, s.Cost, s.Pools, s.MakespanS, s.ViolationSeconds,
				s.TransferViolationSeconds, s.Transfers, s.CrossRack, s.WireCost10x)
		}
	}
	return b.String()
}

// MigrationCSV renders the study for external plotting. Failed cells
// keep their solve time but leave the result columns empty.
func MigrationCSV(r MigrationResult) string {
	var b strings.Builder
	b.WriteString("variant,model,ok,solve_ms,cost,pools,actions,transfers,cross_rack,wire_cost_10x,makespan_s,violation_seconds,transfer_violation_seconds,failed_actions,structural_breaches\n")
	for _, v := range r.Variants {
		for _, s := range []MigrationSide{v.Blind, v.Aware} {
			if s.Err != "" {
				fmt.Fprintf(&b, "%s,%s,false,%.1f,,,,,,,,,,,\n", v.Name, s.Model, s.SolveMS)
				continue
			}
			fmt.Fprintf(&b, "%s,%s,true,%.1f,%d,%d,%d,%d,%d,%d,%.1f,%.1f,%.1f,%d,%d\n",
				v.Name, s.Model, s.SolveMS, s.Cost, s.Pools, s.Actions, s.Transfers,
				s.CrossRack, s.WireCost10x, s.MakespanS, s.ViolationSeconds,
				s.TransferViolationSeconds, s.FailedActions, s.StructuralBreaches)
		}
	}
	return b.String()
}
