package plan

import (
	"testing"

	"cwcs/internal/vjob"
)

func cluster(t *testing.T, nodes int, cpu, mem int) *vjob.Configuration {
	t.Helper()
	c := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		c.AddNode(vjob.NewNode(nodeName(i), cpu, mem))
	}
	return c
}

func nodeName(i int) string { return "N" + string(rune('1'+i)) }

// TestTable1Costs checks every row of Table 1 of the paper.
func TestTable1Costs(t *testing.T) {
	vm := vjob.NewVM("vm", "j", 1, 1024)
	cases := []struct {
		a    Action
		want int
	}{
		{&Migration{Machine: vm, Src: "N1", Dst: "N2"}, 1024},
		{&Run{Machine: vm, On: "N1"}, 0},
		{&Stop{Machine: vm, On: "N1"}, 0},
		{&Suspend{Machine: vm, On: "N1", To: "N1"}, 1024},
		{&Resume{Machine: vm, From: "N1", On: "N1"}, 1024},     // local
		{&Resume{Machine: vm, From: "N1", On: "N2"}, 2 * 1024}, // remote
	}
	for _, tc := range cases {
		if got := tc.a.Cost(); got != tc.want {
			t.Errorf("%s cost = %d, want %d", tc.a, got, tc.want)
		}
		if tc.a.VM() != vm {
			t.Errorf("%s VM() wrong", tc.a)
		}
	}
}

func TestResumeLocal(t *testing.T) {
	vm := vjob.NewVM("vm", "j", 1, 512)
	if !(&Resume{Machine: vm, From: "N1", On: "N1"}).Local() {
		t.Fatal("same-node resume not local")
	}
	if (&Resume{Machine: vm, From: "N1", On: "N2"}).Local() {
		t.Fatal("cross-node resume reported local")
	}
}

func TestActionApplyAndFeasibility(t *testing.T) {
	c := cluster(t, 2, 1, 2048)
	vm := vjob.NewVM("vm1", "j", 1, 1024)
	c.AddVM(vm)

	run := &Run{Machine: vm, On: "N1"}
	if !run.FeasibleIn(c) {
		t.Fatal("run on empty node not feasible")
	}
	if err := run.Apply(c); err != nil {
		t.Fatal(err)
	}
	if c.HostOf("vm1") != "N1" {
		t.Fatal("run did not place the VM")
	}
	if err := run.Apply(c); err == nil {
		t.Fatal("run applied twice")
	}

	mig := &Migration{Machine: vm, Src: "N1", Dst: "N2"}
	if !mig.FeasibleIn(c) {
		t.Fatal("migration to empty node not feasible")
	}
	if err := mig.Apply(c); err != nil {
		t.Fatal(err)
	}
	if c.HostOf("vm1") != "N2" {
		t.Fatal("migration did not move the VM")
	}
	if err := mig.Apply(c); err == nil {
		t.Fatal("migration applied from wrong host")
	}

	sus := &Suspend{Machine: vm, On: "N2", To: "N2"}
	if !sus.FeasibleIn(c) {
		t.Fatal("suspend must always be feasible")
	}
	if err := sus.Apply(c); err != nil {
		t.Fatal(err)
	}
	if c.StateOf("vm1") != vjob.Sleeping || c.ImageHostOf("vm1") != "N2" {
		t.Fatal("suspend did not sleep the VM")
	}
	if err := sus.Apply(c); err == nil {
		t.Fatal("suspend applied to sleeping VM")
	}

	res := &Resume{Machine: vm, From: "N2", On: "N1"}
	if !res.FeasibleIn(c) {
		t.Fatal("resume on empty node not feasible")
	}
	if err := res.Apply(c); err != nil {
		t.Fatal(err)
	}
	if c.HostOf("vm1") != "N1" {
		t.Fatal("resume did not place the VM")
	}
	if err := res.Apply(c); err == nil {
		t.Fatal("resume applied to running VM")
	}

	stop := &Stop{Machine: vm, On: "N1"}
	if !stop.FeasibleIn(c) {
		t.Fatal("stop must always be feasible")
	}
	if err := stop.Apply(c); err != nil {
		t.Fatal(err)
	}
	if c.VM("vm1") != nil {
		t.Fatal("stop did not remove the VM")
	}
	if err := stop.Apply(c); err == nil {
		t.Fatal("stop applied to removed VM")
	}
}

func TestDemandFeasibilityAgainstLoad(t *testing.T) {
	c := cluster(t, 2, 1, 2048)
	busy := vjob.NewVM("busy", "j", 1, 1024)
	c.AddVM(busy)
	if err := c.SetRunning("busy", "N2"); err != nil {
		t.Fatal(err)
	}
	vm := vjob.NewVM("vm1", "j", 1, 512)
	c.AddVM(vm)
	run := &Run{Machine: vm, On: "N2"}
	if run.FeasibleIn(c) {
		t.Fatal("run feasible on CPU-full node")
	}
	vm2 := vjob.NewVM("vm2", "j", 0, 1536)
	c.AddVM(vm2)
	if (&Run{Machine: vm2, On: "N2"}).FeasibleIn(c) {
		t.Fatal("run feasible on memory-full node")
	}
	if !(&Run{Machine: vm2, On: "N1"}).FeasibleIn(c) {
		t.Fatal("run not feasible on empty node")
	}
}

func TestActionStrings(t *testing.T) {
	vm := vjob.NewVM("vm2", "j", 1, 512)
	cases := map[Action]string{
		&Migration{Machine: vm, Src: "N1", Dst: "N3"}: "migrate(vm2,N1,N3)",
		&Run{Machine: vm, On: "N1"}:                   "run(vm2,N1)",
		&Stop{Machine: vm, On: "N1"}:                  "stop(vm2,N1)",
		&Suspend{Machine: vm, On: "N1", To: "N2"}:     "suspend(vm2,N1,N2)",
		&Resume{Machine: vm, From: "N1", On: "N2"}:    "resume(vm2,N1,N2)",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("String() = %q, want %q", a.String(), want)
		}
	}
}
