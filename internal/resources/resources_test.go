package resources

import (
	"encoding/json"
	"testing"
)

func TestRegistry(t *testing.T) {
	if NumKinds() != MaxKinds || NumKinds() < 4 {
		t.Fatalf("NumKinds = %d, MaxKinds = %d", NumKinds(), MaxKinds)
	}
	if len(Kinds()) != NumKinds() {
		t.Fatalf("Kinds() has %d entries", len(Kinds()))
	}
	if len(ExtraKinds()) != NumKinds()-2 || ExtraKinds()[0] != NetBW {
		t.Fatalf("ExtraKinds() = %v", ExtraKinds())
	}
	names := map[Kind]string{CPU: "cpu", Memory: "memory", NetBW: "net", DiskIO: "disk"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
		if k.Unit() == "" || k.Unit() == "?" {
			t.Fatalf("%v has no unit", k)
		}
		back, err := ParseKind(want)
		if err != nil || back != k {
			t.Fatalf("ParseKind(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := ParseKind("tape"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if bad := Kind(200); bad.String() == "" || bad.Unit() != "?" {
		t.Fatalf("out-of-range kind renders %q / %q", bad.String(), bad.Unit())
	}
}

func TestVectorAlgebra(t *testing.T) {
	v := New(2, 4096)
	if v.Get(CPU) != 2 || v.Get(Memory) != 4096 || v.Get(NetBW) != 0 {
		t.Fatalf("New = %v", v)
	}
	v.Set(NetBW, 100)
	w := New(1, 1000)
	sum := v.Add(w)
	if sum.Get(CPU) != 3 || sum.Get(Memory) != 5096 || sum.Get(NetBW) != 100 {
		t.Fatalf("Add = %v", sum)
	}
	diff := sum.Sub(w)
	if diff != v {
		t.Fatalf("Sub did not invert Add: %v vs %v", diff, v)
	}
	if !w.Fits(v) {
		t.Fatal("smaller vector should fit")
	}
	big := New(3, 0)
	if big.Fits(v) {
		t.Fatal("cpu=3 must not fit cpu=2")
	}
	var zero Vector
	if !zero.IsZero() || v.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if v.AnyNegative() {
		t.Fatal("no dimension is negative")
	}
	if !zero.Sub(New(0, 1)).AnyNegative() {
		t.Fatal("negative memory undetected")
	}
	if !v.HasExtra() || New(9, 9).HasExtra() {
		t.Fatal("HasExtra wrong")
	}
}

func TestDominantShare(t *testing.T) {
	total := New(100, 1000)
	total.Set(NetBW, 10)
	d := New(10, 100) // 10% cpu, 10% mem
	if got := d.DominantShare(total); got != 0.1 {
		t.Fatalf("share = %v", got)
	}
	d.Set(NetBW, 5) // 50% net dominates
	if got := d.DominantShare(total); got != 0.5 {
		t.Fatalf("share = %v", got)
	}
	// Demanding a dimension the cluster does not offer saturates.
	d2 := New(0, 0)
	d2.Set(DiskIO, 1)
	if got := d2.DominantShare(total); got != 1 {
		t.Fatalf("share on absent dimension = %v", got)
	}
	if got := (Vector{}).DominantShare(total); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
}

func TestVectorString(t *testing.T) {
	if got := New(1, 2).String(); got != "cpu=1,mem=2" {
		t.Fatalf("2-D String = %q", got)
	}
	v := New(1, 2)
	v.Set(NetBW, 3)
	v.Set(DiskIO, 4)
	if got := v.String(); got != "cpu=1,mem=2,net=3,disk=4" {
		t.Fatalf("4-D String = %q", got)
	}
}

func TestVectorJSONRoundTrip(t *testing.T) {
	v := New(2, 4096)
	v.Set(DiskIO, 50)
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	// Registry order, zeros omitted.
	if string(data) != `{"cpu":2,"memory":4096,"disk":50}` {
		t.Fatalf("encoding = %s", data)
	}
	var back Vector
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != v {
		t.Fatalf("round trip changed %v -> %v", v, back)
	}
	var zero Vector
	data, err = json.Marshal(zero)
	if err != nil || string(data) != "{}" {
		t.Fatalf("zero encodes to %s (%v)", data, err)
	}
}

func TestVectorJSONRejects(t *testing.T) {
	var v Vector
	if err := json.Unmarshal([]byte(`{"tape":3}`), &v); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`[1,2]`), &v); err == nil {
		t.Fatal("non-object accepted")
	}
	// A valid decode replaces previous content entirely.
	v.Set(CPU, 9)
	if err := json.Unmarshal([]byte(`{"net":7}`), &v); err != nil {
		t.Fatal(err)
	}
	if v.Get(CPU) != 0 || v.Get(NetBW) != 7 {
		t.Fatalf("decode merged instead of replacing: %v", v)
	}
}

func TestVectorJSONRejectsNegative(t *testing.T) {
	var v Vector
	if err := json.Unmarshal([]byte(`{"cpu":-5}`), &v); err == nil {
		t.Fatal("negative quantity accepted")
	}
}

func TestFromWire(t *testing.T) {
	v, err := FromWire(2, 4096, map[string]int{"net": 100, "disk": 50})
	if err != nil {
		t.Fatal(err)
	}
	want := New(2, 4096)
	want.Set(NetBW, 100)
	want.Set(DiskIO, 50)
	if v != want {
		t.Fatalf("FromWire = %s", v)
	}
	if v, err := FromWire(1, 2, nil); err != nil || v != New(1, 2) {
		t.Fatalf("no extras: %s, %v", v, err)
	}
	for _, bad := range []struct {
		cpu, mem int
		extras   map[string]int
	}{
		{-1, 0, nil},
		{0, -1, nil},
		{0, 0, map[string]int{"tape": 1}},
		{0, 0, map[string]int{"cpu": 1}},
		{0, 0, map[string]int{"memory": 1}},
		{0, 0, map[string]int{"net": -1}},
	} {
		if _, err := FromWire(bad.cpu, bad.mem, bad.extras); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}
