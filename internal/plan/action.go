// Package plan implements the reconfiguration machinery of the
// cluster-wide context switch (Section 4 of the paper): the actions
// that manipulate VMs, the reconfiguration graph derived from a source
// and a destination configuration, the reconfiguration plan made of
// sequential pools of parallel-feasible actions, the pivot-based
// breaking of inter-dependent migration cycles, the grouping of the
// suspends and resumes of a vjob, and the cost model of Table 1 / §4.2.
package plan

import (
	"fmt"

	"cwcs/internal/vjob"
)

// Action is one elementary VM context switch. Every action knows its
// local cost (Table 1), whether it can begin in a given configuration,
// and how to transform a configuration once it completes.
type Action interface {
	// VM returns the manipulated VM.
	VM() *vjob.VM
	// Cost returns the local cost of the action per Table 1 of the
	// paper, in MiB of moved memory (0 for run and stop).
	Cost() int
	// FeasibleIn reports whether the action can start in the given
	// configuration: the resources it requires on its destination node
	// are free. Actions that only liberate resources are always
	// feasible.
	FeasibleIn(c *vjob.Configuration) bool
	// Apply mutates the configuration to the state reached once the
	// action has completed.
	Apply(c *vjob.Configuration) error
	// String renders the action the way the paper writes it, e.g.
	// "migrate(vm2,n1,n3)".
	String() string
}

// Migration moves a running VM from node Src to node Dst with live
// migration; the VM stays in the Running state throughout.
type Migration struct {
	Machine *vjob.VM
	Src     string
	Dst     string
}

// VM returns the migrated VM.
func (a *Migration) VM() *vjob.VM { return a.Machine }

// Cost is the volume the migration moves (Table 1's Dm, widened by
// TransferSize to the transfer-relevant extra dimensions).
func (a *Migration) Cost() int { return TransferSize(a.Machine) }

// FeasibleIn reports whether Dst currently offers the VM's demands.
func (a *Migration) FeasibleIn(c *vjob.Configuration) bool {
	return c.Fits(a.Machine, a.Dst)
}

// Apply re-hosts the VM on Dst.
func (a *Migration) Apply(c *vjob.Configuration) error {
	if c.StateOf(a.Machine.Name) != vjob.Running || c.HostOf(a.Machine.Name) != a.Src {
		return fmt.Errorf("plan: %s: VM not running on %s", a, a.Src)
	}
	return c.SetRunning(a.Machine.Name, a.Dst)
}

func (a *Migration) String() string {
	return fmt.Sprintf("migrate(%s,%s,%s)", a.Machine.Name, a.Src, a.Dst)
}

// Run boots a waiting VM on node On.
type Run struct {
	Machine *vjob.VM
	On      string
}

// VM returns the booted VM.
func (a *Run) VM() *vjob.VM { return a.Machine }

// Cost is constant, arbitrarily 0 (Table 1): boot duration does not
// depend on the VM demands.
func (a *Run) Cost() int { return 0 }

// FeasibleIn reports whether On currently offers the VM's demands.
func (a *Run) FeasibleIn(c *vjob.Configuration) bool {
	return c.Fits(a.Machine, a.On)
}

// Apply sets the VM running on On.
func (a *Run) Apply(c *vjob.Configuration) error {
	if c.StateOf(a.Machine.Name) != vjob.Waiting {
		return fmt.Errorf("plan: %s: VM not waiting", a)
	}
	return c.SetRunning(a.Machine.Name, a.On)
}

func (a *Run) String() string { return fmt.Sprintf("run(%s,%s)", a.Machine.Name, a.On) }

// Stop shuts a running VM down and removes it from the system; the
// owning vjob is on its way to the Terminated state.
type Stop struct {
	Machine *vjob.VM
	On      string
}

// VM returns the stopped VM.
func (a *Stop) VM() *vjob.VM { return a.Machine }

// Cost is constant, arbitrarily 0 (Table 1).
func (a *Stop) Cost() int { return 0 }

// FeasibleIn always reports true: stopping only liberates resources.
func (a *Stop) FeasibleIn(*vjob.Configuration) bool { return true }

// Apply removes the VM from the configuration.
func (a *Stop) Apply(c *vjob.Configuration) error {
	if c.StateOf(a.Machine.Name) != vjob.Running || c.HostOf(a.Machine.Name) != a.On {
		return fmt.Errorf("plan: %s: VM not running on %s", a, a.On)
	}
	c.RemoveVM(a.Machine.Name)
	return nil
}

func (a *Stop) String() string { return fmt.Sprintf("stop(%s,%s)", a.Machine.Name, a.On) }

// Suspend writes the memory and state of a VM running on node On to
// the persistent storage of node To, liberating On's resources; the VM
// goes Sleeping.
type Suspend struct {
	Machine *vjob.VM
	On      string
	To      string
}

// VM returns the suspended VM.
func (a *Suspend) VM() *vjob.VM { return a.Machine }

// Cost is the volume of the written image (Table 1's Dm, widened by
// TransferSize to the transfer-relevant extra dimensions).
func (a *Suspend) Cost() int { return TransferSize(a.Machine) }

// FeasibleIn always reports true: suspending only liberates resources.
func (a *Suspend) FeasibleIn(*vjob.Configuration) bool { return true }

// Apply moves the VM to the Sleeping state with its image on To.
func (a *Suspend) Apply(c *vjob.Configuration) error {
	if c.StateOf(a.Machine.Name) != vjob.Running || c.HostOf(a.Machine.Name) != a.On {
		return fmt.Errorf("plan: %s: VM not running on %s", a, a.On)
	}
	return c.SetSleeping(a.Machine.Name, a.To)
}

func (a *Suspend) String() string {
	return fmt.Sprintf("suspend(%s,%s,%s)", a.Machine.Name, a.On, a.To)
}

// Resume restores a sleeping VM whose image lies on node From onto
// node On. When From != On the image must first be moved, which
// doubles the cost (Table 1) and roughly doubles the duration (§2.3).
type Resume struct {
	Machine *vjob.VM
	From    string
	On      string
}

// VM returns the resumed VM.
func (a *Resume) VM() *vjob.VM { return a.Machine }

// Local reports whether the resume happens on the node already holding
// the suspended image.
func (a *Resume) Local() bool { return a.From == a.On }

// Cost is the image volume for a local resume and twice that for a
// remote one, which must drag the image across first (Table 1, with
// Dm widened by TransferSize to the transfer-relevant dimensions).
func (a *Resume) Cost() int {
	if a.Local() {
		return TransferSize(a.Machine)
	}
	return 2 * TransferSize(a.Machine)
}

// FeasibleIn reports whether On currently offers the VM's demands.
func (a *Resume) FeasibleIn(c *vjob.Configuration) bool {
	return c.Fits(a.Machine, a.On)
}

// Apply sets the VM running on On.
func (a *Resume) Apply(c *vjob.Configuration) error {
	if c.StateOf(a.Machine.Name) != vjob.Sleeping {
		return fmt.Errorf("plan: %s: VM not sleeping", a)
	}
	return c.SetRunning(a.Machine.Name, a.On)
}

func (a *Resume) String() string {
	return fmt.Sprintf("resume(%s,%s,%s)", a.Machine.Name, a.From, a.On)
}
