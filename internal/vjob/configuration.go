package vjob

import (
	"fmt"
	"sort"
	"strings"

	"cwcs/internal/resources"
)

// Configuration is a snapshot of the cluster: the set of nodes, the set
// of VMs, and for each VM its state and location. Running VMs are
// mapped to their hosting node; sleeping VMs are mapped to the node
// whose storage holds their suspended image (which decides whether a
// later resume is local or remote); waiting VMs hold no location.
//
// A Configuration is a plain value-like structure: Clone returns a deep
// copy of the mapping (nodes and VMs themselves are shared, since the
// planner never mutates them).
type Configuration struct {
	nodes map[string]*Node
	vms   map[string]*VM

	state     map[string]State  // VM name -> state
	placement map[string]string // VM name -> node name (running host or image host)

	nodeOrder []string // sorted node names, for deterministic iteration
	vmOrder   []string // sorted VM names
}

// NewConfiguration returns an empty configuration.
func NewConfiguration() *Configuration {
	return &Configuration{
		nodes:     make(map[string]*Node),
		vms:       make(map[string]*VM),
		state:     make(map[string]State),
		placement: make(map[string]string),
	}
}

// AddNode registers a node. Re-adding a name replaces the previous
// node object but keeps all placements.
func (c *Configuration) AddNode(n *Node) {
	if _, ok := c.nodes[n.Name]; !ok {
		c.nodeOrder = insertSorted(c.nodeOrder, n.Name)
	}
	c.nodes[n.Name] = n
}

// AddVM registers a VM in the Waiting state.
func (c *Configuration) AddVM(v *VM) {
	if _, ok := c.vms[v.Name]; !ok {
		c.vmOrder = insertSorted(c.vmOrder, v.Name)
	}
	c.vms[v.Name] = v
	c.state[v.Name] = Waiting
	delete(c.placement, v.Name)
}

// RemoveNode drops a node from the configuration (the effect of taking
// an evacuated node offline for maintenance). It refuses while any VM
// is still placed on the node — running guests or sleeping images must
// be moved first, or their placements would dangle.
func (c *Configuration) RemoveNode(name string) error {
	if _, ok := c.nodes[name]; !ok {
		return fmt.Errorf("vjob: unknown node %q", name)
	}
	for vm, loc := range c.placement {
		if loc == name {
			return fmt.Errorf("vjob: node %s still holds %s (%v)", name, vm, c.state[vm])
		}
	}
	delete(c.nodes, name)
	i := sort.SearchStrings(c.nodeOrder, name)
	if i < len(c.nodeOrder) && c.nodeOrder[i] == name {
		c.nodeOrder = append(c.nodeOrder[:i], c.nodeOrder[i+1:]...)
	}
	return nil
}

// RemoveVM drops a VM from the configuration (the effect of a stop
// action followed by garbage collection of the Terminated vjob).
func (c *Configuration) RemoveVM(name string) {
	if _, ok := c.vms[name]; !ok {
		return
	}
	delete(c.vms, name)
	delete(c.state, name)
	delete(c.placement, name)
	i := sort.SearchStrings(c.vmOrder, name)
	if i < len(c.vmOrder) && c.vmOrder[i] == name {
		c.vmOrder = append(c.vmOrder[:i], c.vmOrder[i+1:]...)
	}
}

func insertSorted(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Node returns the node with the given name, or nil.
func (c *Configuration) Node(name string) *Node { return c.nodes[name] }

// VM returns the VM with the given name, or nil.
func (c *Configuration) VM(name string) *VM { return c.vms[name] }

// Nodes returns the nodes in deterministic (name) order.
func (c *Configuration) Nodes() []*Node {
	out := make([]*Node, 0, len(c.nodeOrder))
	for _, n := range c.nodeOrder {
		out = append(out, c.nodes[n])
	}
	return out
}

// VMs returns the VMs in deterministic (name) order.
func (c *Configuration) VMs() []*VM {
	out := make([]*VM, 0, len(c.vmOrder))
	for _, n := range c.vmOrder {
		out = append(out, c.vms[n])
	}
	return out
}

// NumNodes returns the number of registered nodes.
func (c *Configuration) NumNodes() int { return len(c.nodes) }

// NumVMs returns the number of registered VMs.
func (c *Configuration) NumVMs() int { return len(c.vms) }

// SetRunning places the VM in the Running state on the given node.
func (c *Configuration) SetRunning(vm, node string) error {
	if err := c.check(vm, node); err != nil {
		return err
	}
	c.state[vm] = Running
	c.placement[vm] = node
	return nil
}

// SetSleeping places the VM in the Sleeping state with its suspended
// image stored on the given node.
func (c *Configuration) SetSleeping(vm, node string) error {
	if err := c.check(vm, node); err != nil {
		return err
	}
	c.state[vm] = Sleeping
	c.placement[vm] = node
	return nil
}

// SetWaiting moves the VM back to the Waiting state (no location).
func (c *Configuration) SetWaiting(vm string) error {
	if _, ok := c.vms[vm]; !ok {
		return fmt.Errorf("vjob: unknown VM %q", vm)
	}
	c.state[vm] = Waiting
	delete(c.placement, vm)
	return nil
}

func (c *Configuration) check(vm, node string) error {
	if _, ok := c.vms[vm]; !ok {
		return fmt.Errorf("vjob: unknown VM %q", vm)
	}
	if _, ok := c.nodes[node]; !ok {
		return fmt.Errorf("vjob: unknown node %q", node)
	}
	return nil
}

// StateOf returns the state of the VM. Unknown VMs are Terminated.
func (c *Configuration) StateOf(vm string) State {
	s, ok := c.state[vm]
	if !ok {
		return Terminated
	}
	return s
}

// HostOf returns the node hosting the running VM, or "" when the VM is
// not running.
func (c *Configuration) HostOf(vm string) string {
	if c.state[vm] != Running {
		return ""
	}
	return c.placement[vm]
}

// ImageHostOf returns the node storing the sleeping VM's image, or ""
// when the VM is not sleeping.
func (c *Configuration) ImageHostOf(vm string) string {
	if c.state[vm] != Sleeping {
		return ""
	}
	return c.placement[vm]
}

// LocationOf returns the placement of the VM regardless of state
// (hosting node when running, image node when sleeping, "" otherwise).
func (c *Configuration) LocationOf(vm string) string { return c.placement[vm] }

// RunningOn returns the VMs running on the named node, in name order.
func (c *Configuration) RunningOn(node string) []*VM {
	var out []*VM
	for _, name := range c.vmOrder {
		if c.state[name] == Running && c.placement[name] == node {
			out = append(out, c.vms[name])
		}
	}
	return out
}

// SleepingOn returns the VMs whose suspended image lies on the node.
func (c *Configuration) SleepingOn(node string) []*VM {
	var out []*VM
	for _, name := range c.vmOrder {
		if c.state[name] == Sleeping && c.placement[name] == node {
			out = append(out, c.vms[name])
		}
	}
	return out
}

// InState returns the VMs currently in the given state, in name order.
func (c *Configuration) InState(s State) []*VM {
	var out []*VM
	for _, name := range c.vmOrder {
		if c.state[name] == s {
			out = append(out, c.vms[name])
		}
	}
	return out
}

// Used returns the per-dimension demand of the VMs running on the
// node. It rescans the VM set; hot paths use FreeResources instead.
func (c *Configuration) Used(node string) resources.Vector {
	var sum resources.Vector
	for _, v := range c.RunningOn(node) {
		sum = sum.Add(v.Demand)
	}
	return sum
}

// UsedCPU returns the total CPU demand of the VMs running on the node.
func (c *Configuration) UsedCPU(node string) int {
	return c.Used(node).Get(resources.CPU)
}

// UsedMemory returns the total memory demand of the VMs running on the
// node, in MiB.
func (c *Configuration) UsedMemory(node string) int {
	return c.Used(node).Get(resources.Memory)
}

// Free returns the node's remaining resources per dimension (zero for
// unknown nodes).
func (c *Configuration) Free(node string) resources.Vector {
	n := c.nodes[node]
	if n == nil {
		return resources.Vector{}
	}
	return n.Capacity.Sub(c.Used(node))
}

// FreeCPU returns the node's remaining processing units.
func (c *Configuration) FreeCPU(node string) int {
	return c.Free(node).Get(resources.CPU)
}

// FreeMemory returns the node's remaining memory in MiB.
func (c *Configuration) FreeMemory(node string) int {
	return c.Free(node).Get(resources.Memory)
}

// Fits reports whether the VM's demands fit in the node's current free
// resources, on every dimension.
func (c *Configuration) Fits(v *VM, node string) bool {
	return v.Demand.Fits(c.Free(node))
}

// FreeResources returns the free resources of every node, every
// dimension at once, in one O(nodes + VMs) pass. Hot paths (the FFD
// heuristic, plan pool extraction, the cost model, monitoring) use it
// instead of calling Free per node, which rescans the whole VM set
// each call and turns thousand-node clusters quadratic.
func (c *Configuration) FreeResources() map[string]resources.Vector {
	free := make(map[string]resources.Vector, len(c.nodes))
	for name, n := range c.nodes {
		free[name] = n.Capacity
	}
	for vm, st := range c.state {
		if st != Running {
			continue
		}
		node := c.placement[vm]
		free[node] = free[node].Sub(c.vms[vm].Demand)
	}
	return free
}

// Clone returns a deep copy of the placement and state mapping. Node
// and VM objects are shared: they are immutable from the planner's
// point of view.
func (c *Configuration) Clone() *Configuration {
	out := &Configuration{
		nodes:     make(map[string]*Node, len(c.nodes)),
		vms:       make(map[string]*VM, len(c.vms)),
		state:     make(map[string]State, len(c.state)),
		placement: make(map[string]string, len(c.placement)),
		nodeOrder: append([]string(nil), c.nodeOrder...),
		vmOrder:   append([]string(nil), c.vmOrder...),
	}
	for k, v := range c.nodes {
		out.nodes[k] = v
	}
	for k, v := range c.vms {
		out.vms[k] = v
	}
	for k, v := range c.state {
		out.state[k] = v
	}
	for k, v := range c.placement {
		out.placement[k] = v
	}
	return out
}

// Equal reports whether the two configurations have the same nodes,
// VMs, states and placements.
func (c *Configuration) Equal(o *Configuration) bool {
	if len(c.nodes) != len(o.nodes) || len(c.vms) != len(o.vms) {
		return false
	}
	for name := range c.nodes {
		if _, ok := o.nodes[name]; !ok {
			return false
		}
	}
	for name := range c.vms {
		if _, ok := o.vms[name]; !ok {
			return false
		}
		if c.state[name] != o.state[name] || c.placement[name] != o.placement[name] {
			return false
		}
	}
	return true
}

// String renders the configuration node by node, for debugging and for
// the planviz tool.
func (c *Configuration) String() string {
	var b strings.Builder
	for _, n := range c.Nodes() {
		fmt.Fprintf(&b, "%s:", n.Name)
		for _, v := range c.RunningOn(n.Name) {
			fmt.Fprintf(&b, " %s", v.Name)
		}
		for _, v := range c.SleepingOn(n.Name) {
			fmt.Fprintf(&b, " (%s)", v.Name)
		}
		b.WriteByte('\n')
	}
	if w := c.InState(Waiting); len(w) > 0 {
		b.WriteString("waiting:")
		for _, v := range w {
			fmt.Fprintf(&b, " %s", v.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
