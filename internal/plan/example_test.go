package plan_test

import (
	"fmt"

	"cwcs/internal/plan"
	"cwcs/internal/vjob"
)

// Example reproduces Figure 7 of the paper: the migration of vm1 to N2
// can only begin once the suspend of vm2 has liberated N2's memory, so
// the plan sequences them into two pools.
func Example() {
	src := vjob.NewConfiguration()
	src.AddNode(vjob.NewNode("N1", 2, 3072))
	src.AddNode(vjob.NewNode("N2", 2, 3072))
	vm1 := vjob.NewVM("vm1", "a", 1, 2048)
	vm2 := vjob.NewVM("vm2", "b", 1, 2048)
	src.AddVM(vm1)
	src.AddVM(vm2)
	_ = src.SetRunning("vm1", "N1")
	_ = src.SetRunning("vm2", "N2")

	dst := src.Clone()
	_ = dst.SetSleeping("vm2", "N2")
	_ = dst.SetRunning("vm1", "N2")

	p, err := plan.Build(src, dst)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(p)
	// Output:
	// pool 0 (cost 2048):
	//   suspend(vm2,N2,N2) (local 2048, total 2048)
	// pool 1 (cost 2048):
	//   migrate(vm1,N1,N2) (local 2048, total 4096)
	// plan cost: 6144
}

// ExampleBuildGraph shows the action diff between two configurations.
func ExampleBuildGraph() {
	src := vjob.NewConfiguration()
	src.AddNode(vjob.NewNode("N1", 2, 4096))
	src.AddNode(vjob.NewNode("N2", 2, 4096))
	vm := vjob.NewVM("web-0", "web", 1, 1024)
	src.AddVM(vm)
	_ = src.SetRunning("web-0", "N1")

	dst := src.Clone()
	_ = dst.SetRunning("web-0", "N2")

	g, _ := plan.BuildGraph(src, dst)
	fmt.Print(g)
	// Output:
	// migrate(web-0,N1,N2)
}
