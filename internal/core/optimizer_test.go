package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cwcs/internal/vjob"
)

func mkCluster(nodes, cpu, mem int) *vjob.Configuration {
	c := vjob.NewConfiguration()
	for i := 0; i < nodes; i++ {
		c.AddNode(vjob.NewNode(fmt.Sprintf("n%02d", i), cpu, mem))
	}
	return c
}

func mustRun(t *testing.T, c *vjob.Configuration, vm, node string) {
	t.Helper()
	if err := c.SetRunning(vm, node); err != nil {
		t.Fatal(err)
	}
}

// TestStableConfigurationCostsNothing: when the current configuration
// already satisfies the targets, the optimal plan is empty.
func TestStableConfigurationCostsNothing(t *testing.T) {
	c := mkCluster(3, 2, 4096)
	j := vjob.NewVJob("j1", 0,
		vjob.NewVM("j1-1", "", 1, 1024),
		vjob.NewVM("j1-2", "", 1, 1024))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	mustRun(t, c, "j1-1", "n00")
	mustRun(t, c, "j1-2", "n01")

	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j1": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.Plan.NumActions() != 0 {
		t.Fatalf("cost=%d actions=%d, want empty plan:\n%s", res.Cost, res.Plan.NumActions(), res.Plan)
	}
	if !res.Optimal {
		t.Fatal("trivial problem not proven optimal")
	}
	if !res.Dst.Equal(c) {
		t.Fatal("destination differs from source")
	}
}

// TestOverloadFixedByMigration: a node hosting two busy VMs on one CPU
// must shed one; migrating the smaller VM is cheapest.
func TestOverloadFixedByMigration(t *testing.T) {
	c := mkCluster(2, 1, 8192)
	big := vjob.NewVM("big", "a", 1, 2048)
	small := vjob.NewVM("small", "b", 1, 512)
	c.AddVM(big)
	c.AddVM(small)
	mustRun(t, c, "big", "n00")
	mustRun(t, c, "small", "n00") // CPU overload on n00

	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{
		"a": vjob.Running, "b": vjob.Running,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dst.Viable() {
		t.Fatal("destination not viable")
	}
	if res.Cost != 512 {
		t.Fatalf("cost = %d, want 512 (migrate the small VM)\n%s", res.Cost, res.Plan)
	}
	if res.Dst.HostOf("big") != "n00" || res.Dst.HostOf("small") != "n01" {
		t.Fatalf("wrong move: big on %s, small on %s", res.Dst.HostOf("big"), res.Dst.HostOf("small"))
	}
}

// TestSuspendWritesImageLocally: a vjob sent to Sleeping suspends each
// VM to its current host, so future resumes can be local.
func TestSuspendWritesImageLocally(t *testing.T) {
	c := mkCluster(2, 2, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 1024), vjob.NewVM("j-2", "", 1, 512))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	mustRun(t, c, "j-1", "n00")
	mustRun(t, c, "j-2", "n01")

	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Sleeping}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.ImageHostOf("j-1") != "n00" || res.Dst.ImageHostOf("j-2") != "n01" {
		t.Fatal("suspend images not local")
	}
	// Two suspends in one pool: plan cost = 1024 + 512.
	if res.Cost != 1536 {
		t.Fatalf("cost = %d, want 1536\n%s", res.Cost, res.Plan)
	}
	if len(res.Plan.Pools) != 1 {
		t.Fatalf("suspends should share one pool:\n%s", res.Plan)
	}
}

// TestResumePrefersImageHost: resuming a sleeping vjob lands on the
// node holding the image (local resume, Dm) rather than elsewhere
// (2·Dm).
func TestResumePrefersImageHost(t *testing.T) {
	c := mkCluster(3, 2, 4096)
	v := vjob.NewVM("s-1", "s", 1, 2048)
	c.AddVM(v)
	if err := c.SetSleeping("s-1", "n02"); err != nil {
		t.Fatal(err)
	}
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"s": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.HostOf("s-1") != "n02" {
		t.Fatalf("resumed on %s, want local n02", res.Dst.HostOf("s-1"))
	}
	if res.Cost != 2048 {
		t.Fatalf("cost = %d, want 2048 (local resume)", res.Cost)
	}
}

// TestRemoteResumeWhenImageHostFull: when the image host has no room,
// the resume must go remote and cost 2·Dm.
func TestRemoteResumeWhenImageHostFull(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	blocker := vjob.NewVM("blk", "keep", 1, 512)
	sleeper := vjob.NewVM("s-1", "s", 1, 1024)
	c.AddVM(blocker)
	c.AddVM(sleeper)
	mustRun(t, c, "blk", "n00")
	if err := c.SetSleeping("s-1", "n00"); err != nil {
		t.Fatal(err)
	}
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"s": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	// Options: remote resume on n01 (2048) vs migrate blocker (512) +
	// local resume (1024) in two pools: 512 + (512+1024) = 2048. Both
	// cost 2048; accept either but insist on viability and cost.
	if !res.Dst.Viable() {
		t.Fatal("not viable")
	}
	if res.Cost > 2048 {
		t.Fatalf("cost = %d, want <= 2048\n%s", res.Cost, res.Plan)
	}
}

// TestStopActionsAreFree: terminating a vjob is a zero-cost plan.
func TestStopActionsAreFree(t *testing.T) {
	c := mkCluster(1, 2, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 2048))
	c.AddVM(j.VMs[0])
	mustRun(t, c, "j-1", "n00")
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Terminated}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d", res.Cost)
	}
	if res.Dst.VM("j-1") != nil {
		t.Fatal("VM not removed")
	}
}

// TestWaitingVJobStarts: a waiting vjob asked to run boots on any
// fitting nodes for free.
func TestWaitingVJobStarts(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 1024), vjob.NewVM("j-2", "", 1, 1024))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %d, want 0 (runs are free)", res.Cost)
	}
	if res.Dst.StateOf("j-1") != vjob.Running || res.Dst.StateOf("j-2") != vjob.Running {
		t.Fatal("vjob not started")
	}
}

// TestNoViableConfiguration: demanding more CPUs than the cluster has
// must fail cleanly.
func TestNoViableConfiguration(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 512), vjob.NewVM("j-2", "", 1, 512))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	_, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v, want ErrNoViableConfiguration", err)
	}
}

// TestVMTooBigForAnyNode: static domain filtering catches it.
func TestVMTooBigForAnyNode(t *testing.T) {
	c := mkCluster(2, 1, 1024)
	c.AddVM(vjob.NewVM("huge", "j", 1, 9999))
	_, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}

// TestInvalidTargetTransition: sleeping -> terminated skips the
// mandatory resume and must be rejected.
func TestInvalidTargetTransition(t *testing.T) {
	c := mkCluster(1, 1, 1024)
	c.AddVM(vjob.NewVM("s", "j", 1, 512))
	if err := c.SetSleeping("s", "n00"); err != nil {
		t.Fatal(err)
	}
	_, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Terminated}})
	if err == nil {
		t.Fatal("invalid transition accepted")
	}
}

// TestSleepTargetCoercedForWaitingVM: a waiting VM of a vjob sent to
// Sleeping stays waiting instead of failing the whole reconfiguration.
func TestSleepTargetCoercedForWaitingVM(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	j := vjob.NewVJob("j", 0, vjob.NewVM("j-1", "", 1, 512), vjob.NewVM("j-2", "", 1, 512))
	for _, v := range j.VMs {
		c.AddVM(v)
	}
	mustRun(t, c, "j-1", "n00") // j-2 never placed: mixed state
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Sleeping}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.StateOf("j-1") != vjob.Sleeping {
		t.Fatal("running VM not suspended")
	}
	if res.Dst.StateOf("j-2") != vjob.Waiting {
		t.Fatal("waiting VM should stay waiting")
	}
}

// TestKeepVMState: vjobs absent from Target keep their state, but
// their running VMs may still migrate to enable the requested changes.
func TestKeepVMState(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	keeper := vjob.NewVM("keep-1", "keep", 1, 512)
	starter := vjob.NewVM("new-1", "new", 1, 4096)
	c.AddVM(keeper)
	c.AddVM(starter)
	mustRun(t, c, "keep-1", "n00")
	// new-1 needs a whole node's memory: only n01 or n00-after-eviction
	// works. keep stays running either way.
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"new": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst.StateOf("keep-1") != vjob.Running {
		t.Fatal("keepVMState violated")
	}
	if res.Dst.StateOf("new-1") != vjob.Running {
		t.Fatal("target not reached")
	}
	if !res.Dst.Viable() {
		t.Fatal("not viable")
	}
}

// TestEntropyBeatsOrMatchesFFD is the heart of Figure 10: on random
// reconfigurations the CP plan never costs more than the FFD plan.
func TestEntropyBeatsOrMatchesFFD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nNodes := 3 + rng.Intn(5)
		c := mkCluster(nNodes, 2, 4096)
		nJobs := 1 + rng.Intn(4)
		target := map[string]vjob.State{}
		for j := 0; j < nJobs; j++ {
			name := fmt.Sprintf("j%d", j)
			nvm := 1 + rng.Intn(3)
			vms := make([]*vjob.VM, nvm)
			for k := range vms {
				vms[k] = vjob.NewVM(fmt.Sprintf("%s-%d", name, k), name, rng.Intn(2), 256*(1+rng.Intn(8)))
				c.AddVM(vms[k])
			}
			vjob.NewVJob(name, j, vms...)
			// Place running or sleeping at random but viable.
			for _, v := range vms {
				placed := false
				if rng.Intn(3) > 0 {
					for _, n := range c.Nodes() {
						if c.Fits(v, n.Name) {
							if err := c.SetRunning(v.Name, n.Name); err == nil {
								placed = true
							}
							break
						}
					}
				}
				if !placed && rng.Intn(2) == 0 {
					_ = c.SetSleeping(v.Name, c.Nodes()[rng.Intn(nNodes)].Name)
				}
			}
			st := c.VJobState(vjob.NewVJob(name, j, vms...))
			switch rng.Intn(3) {
			case 0:
				target[name] = vjob.Running
			case 1:
				if st == vjob.Running {
					target[name] = vjob.Sleeping
				}
			}
		}
		p := Problem{Src: c, Target: target}
		ffd, ferr := FFDPlan(p)
		ent, eerr := Optimizer{Timeout: 2 * time.Second}.Solve(p)
		if ferr != nil || eerr != nil {
			// Either may fail on infeasible targets; both failing or
			// either failing is acceptable for this property.
			return true
		}
		if ent.Cost > ffd.Cost {
			t.Logf("seed %d: entropy %d > ffd %d", seed, ent.Cost, ffd.Cost)
			return false
		}
		return ent.Plan.Validate() == nil && ffd.Plan.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAblationsStillSolve: the ablated solver variants stay correct
// (they only search differently).
func TestAblationsStillSolve(t *testing.T) {
	c := mkCluster(3, 2, 4096)
	for j := 0; j < 3; j++ {
		name := fmt.Sprintf("j%d", j)
		v := vjob.NewVM(name+"-1", name, 1, 1024)
		c.AddVM(v)
		mustRun(t, c, v.Name, fmt.Sprintf("n%02d", j))
	}
	target := map[string]vjob.State{"j0": vjob.Running, "j1": vjob.Running, "j2": vjob.Running}
	for _, o := range []Optimizer{
		{NaiveOrdering: true},
		{DisableCostBound: true},
		{UseKnapsack: true},
	} {
		res, err := o.Solve(Problem{Src: c, Target: target})
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if res.Cost != 0 {
			t.Fatalf("%+v: cost = %d, want 0", o, res.Cost)
		}
	}
}

// TestFFDPlanValid: the baseline produces validated plans too.
func TestFFDPlanValid(t *testing.T) {
	c := mkCluster(3, 2, 4096)
	for j := 0; j < 4; j++ {
		v := vjob.NewVM(fmt.Sprintf("v%d", j), fmt.Sprintf("j%d", j), 1, 1024)
		c.AddVM(v)
		mustRun(t, c, v.Name, fmt.Sprintf("n%02d", j%3))
	}
	res, err := FFDPlan(Problem{Src: c, Target: map[string]vjob.State{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, res.Plan)
	}
	if !res.Dst.Viable() {
		t.Fatal("FFD destination not viable")
	}
}

// TestFFDPlanInfeasible: FFD fails cleanly when VMs cannot fit.
func TestFFDPlanInfeasible(t *testing.T) {
	c := mkCluster(1, 1, 1024)
	c.AddVM(vjob.NewVM("a", "j", 1, 512))
	c.AddVM(vjob.NewVM("b", "j", 1, 512))
	_, err := FFDPlan(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}

// TestOptimizerProducesValidatedPlan: every emitted plan passes the
// replay validator.
func TestOptimizerProducesValidatedPlan(t *testing.T) {
	c := mkCluster(3, 1, 3072)
	a := vjob.NewVM("a-1", "a", 1, 2048)
	b := vjob.NewVM("b-1", "b", 1, 2048)
	c.AddVM(a)
	c.AddVM(b)
	mustRun(t, c, "a-1", "n00")
	mustRun(t, c, "b-1", "n01")
	// Ask for a third vjob that forces rearrangement.
	d := vjob.NewVM("d-1", "d", 1, 3072)
	c.AddVM(d)
	res, err := Optimizer{}.Solve(Problem{Src: c, Target: map[string]vjob.State{"d": vjob.Running}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, res.Plan)
	}
	got, err := res.Plan.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(res.Dst) {
		t.Fatal("plan does not realize Dst")
	}
}

// TestTimeoutFallsBackToHeuristic: with an elapsed deadline the CP
// search cannot run, but the optimizer still returns the FFD-seeded
// incumbent, so callers always get a workable plan when one exists.
func TestTimeoutFallsBackToHeuristic(t *testing.T) {
	c := mkCluster(2, 1, 4096)
	// A sleeping VM: any plan costs at least one resume (>0), so the
	// expired deadline cannot prove optimality.
	c.AddVM(vjob.NewVM("v", "j", 1, 512))
	if err := c.SetSleeping("v", "n01"); err != nil {
		t.Fatal(err)
	}
	o := Optimizer{Timeout: -time.Second}
	res, err := o.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if res.Dst.StateOf("v") != vjob.Running || !res.Dst.Viable() {
		t.Fatal("fallback result unusable")
	}
	if res.Optimal {
		t.Fatal("timed-out search must not claim optimality")
	}
}

// TestTimeoutWithNoSolutionAtAll: when even the heuristic cannot place
// the VMs, the expired deadline surfaces as ErrNoViableConfiguration.
func TestTimeoutWithNoSolutionAtAll(t *testing.T) {
	c := mkCluster(1, 1, 4096)
	c.AddVM(vjob.NewVM("a", "j", 1, 512))
	c.AddVM(vjob.NewVM("b", "j", 1, 512))
	o := Optimizer{Timeout: -time.Second}
	_, err := o.Solve(Problem{Src: c, Target: map[string]vjob.State{"j": vjob.Running}})
	if !errors.Is(err, ErrNoViableConfiguration) {
		t.Fatalf("err = %v", err)
	}
}
