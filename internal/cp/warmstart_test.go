package cp

import (
	"errors"
	"testing"
)

// sumEquals binds obj to the sum of vars through a cloneable
// FuncConstraint (portfolio tests clone the model).
func sumEquals(vars []*IntVar, obj *IntVar) Constraint {
	return &FuncConstraint{
		On: append([]*IntVar{obj}, vars...),
		Rebind: func(remap func(*IntVar) *IntVar) Constraint {
			nv := make([]*IntVar, len(vars))
			for i, v := range vars {
				nv[i] = remap(v)
			}
			return sumEquals(nv, remap(obj))
		},
		Run: func(s *Solver) error {
			lo, hi := 0, 0
			for _, v := range vars {
				lo += v.Min()
				hi += v.Max()
			}
			if err := s.RemoveBelow(obj, lo); err != nil {
				return err
			}
			return s.RemoveAbove(obj, hi)
		},
	}
}

// warmModel builds a small weighted-assignment minimization: three
// enumerated variables, an AllDifferent, and an objective equal to the
// sum of the chosen values.
func warmModel(t *testing.T) (*Solver, []*IntVar, *IntVar) {
	t.Helper()
	s := NewSolver()
	vars := []*IntVar{
		s.NewEnumVar("a", []int{0, 1, 2, 3}),
		s.NewEnumVar("b", []int{0, 1, 2, 3}),
		s.NewEnumVar("c", []int{0, 1, 2, 3}),
	}
	s.Post(&AllDifferent{Items: vars})
	obj := s.NewIntVar("obj", 0, 9)
	s.Post(sumEquals(vars, obj))
	return s, vars, obj
}

func TestMinimizeWithHintsFindsOptimum(t *testing.T) {
	s, vars, obj := warmModel(t)
	// Hint the worst assignment: injection must seed the incumbent at
	// objective 1+2+3, and the search must still reach the optimum 0+1+2.
	hints := map[*IntVar]int{vars[0]: 1, vars[1]: 2, vars[2]: 3}
	sol, err := s.Minimize(obj, Options{Vars: vars, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %d, want 3", sol.Objective)
	}
}

func TestMinimizeInjectionSeedsIncumbent(t *testing.T) {
	s, vars, obj := warmModel(t)
	// Hint the true optimum: injection alone should find it, and the
	// subsequent search only proves optimality.
	hints := map[*IntVar]int{vars[0]: 0, vars[1]: 1, vars[2]: 2}
	sol, err := s.Minimize(obj, Options{Vars: vars, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %d, want 3", sol.Objective)
	}
	if got := sol.MustValue(vars[0]); got != 0 {
		t.Fatalf("a = %d, want the hinted 0", got)
	}
}

func TestInjectRejectsInconsistentHints(t *testing.T) {
	s, vars, obj := warmModel(t)
	// a and b hinted to the same value: AllDifferent refutes it; the
	// solve must still succeed from scratch.
	hints := map[*IntVar]int{vars[0]: 1, vars[1]: 1, vars[2]: 2}
	sol, err := s.Minimize(obj, Options{Vars: vars, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %d, want 3", sol.Objective)
	}
}

func TestInjectRequiresCompleteHints(t *testing.T) {
	s, vars, obj := warmModel(t)
	snap := s.snapshot()
	if _, ok := s.inject(vars, obj, Options{Hints: map[*IntVar]int{vars[0]: 1}}); ok {
		t.Fatal("partial hints were injected")
	}
	// Injection must leave the solver state untouched.
	for i, v := range s.vars {
		if v.dom.size() != snap[i].size() {
			t.Fatalf("inject leaked domain changes on %s", v.name)
		}
	}
}

func TestHintsSteerValueOrder(t *testing.T) {
	s := NewSolver()
	v := s.NewEnumVar("v", []int{0, 1, 2, 3})
	v.SetPreferred(1)
	order := s.valueOrder(v, Options{PreferValue: true, Hints: map[*IntVar]int{v: 2}})
	if order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want hint 2 first then preferred 1", order)
	}
	seen := map[int]int{}
	for _, val := range order {
		seen[val]++
	}
	if len(order) != 4 || seen[0] != 1 || seen[1] != 1 || seen[2] != 1 || seen[3] != 1 {
		t.Fatalf("order %v lost or duplicated values", order)
	}
	// A hint equal to the preferred value must not duplicate it.
	order = s.valueOrder(v, Options{PreferValue: true, Hints: map[*IntVar]int{v: 1}})
	if order[0] != 1 || len(order) != 4 {
		t.Fatalf("order = %v, want preferred/hinted 1 first, no duplicates", order)
	}
}

func TestMinimizePortfolioWithHints(t *testing.T) {
	s, vars, obj := warmModel(t)
	hints := map[*IntVar]int{vars[0]: 3, vars[1]: 2, vars[2]: 1}
	sol, err := s.MinimizePortfolio(obj, PortfolioOptions{
		Workers: 4,
		Base:    Options{Vars: vars, Hints: hints},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %d, want 3", sol.Objective)
	}
}

func TestMinimizePortfolioInjectedOptimumSurvivesProof(t *testing.T) {
	// A model whose only solution is the hinted one: the injection
	// finds it, the workers prove the space below it empty, and the
	// portfolio must return the injected solution as optimal.
	s := NewSolver()
	v := s.NewEnumVar("v", []int{5})
	obj := s.NewIntVar("obj", 0, 10)
	s.Post(sumEquals([]*IntVar{v}, obj))
	sol, err := s.MinimizePortfolio(obj, PortfolioOptions{
		Workers: 2,
		Base:    Options{Vars: []*IntVar{v}, Hints: map[*IntVar]int{v: 5}},
	})
	if err != nil && !errors.Is(err, ErrFailed) {
		t.Fatal(err)
	}
	if err != nil {
		t.Fatalf("injected optimum lost: %v", err)
	}
	if sol.Objective != 5 {
		t.Fatalf("objective = %d, want 5", sol.Objective)
	}
}
