// Package api is the embeddable HTTP control plane of the daemon: the
// operator surface that lets monitoring systems and humans drive the
// cluster-wide context switch engine from outside the process.
//
// Read endpoints expose the live configuration, the executing plan
// with per-action status, the loop telemetry and Prometheus-style
// metrics; write endpoints inject cluster events into the event-driven
// loop (the same path the simulator's monitoring uses), command node
// lifecycle (drain / undrain, which install Ban-style Drained rules
// through core.DrainSet and trigger evacuation), and submit or
// withdraw vjobs at runtime.
//
// The server is deliberately thin: it owns no cluster state. Every
// handler runs its work inside the Exec serializer the host provides,
// so the control plane, the control loop and the simulator never race;
// responses are written outside the critical section.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"cwcs/internal/core"
	"cwcs/internal/drivers"
	"cwcs/internal/monitor"
	"cwcs/internal/obs"
	"cwcs/internal/resources"
	"cwcs/internal/vjob"
)

// PhaseSpec is one workload phase of a submitted VM: CPU processing
// units for Seconds of work (mirrors sim.Phase).
type PhaseSpec struct {
	CPU     int     `json:"cpu"`
	Seconds float64 `json:"seconds"`
}

// VMSpec describes one VM of a submitted vjob.
type VMSpec struct {
	Name   string `json:"name"`
	CPU    int    `json:"cpu"`
	Memory int    `json:"memory"`
	// Phases is the workload the host attaches to the VM; empty means
	// a service VM that runs until the vjob is withdrawn.
	Phases []PhaseSpec `json:"phases,omitempty"`
}

// VJobSpec is the body of POST /v1/vjobs.
type VJobSpec struct {
	Name string   `json:"name"`
	VMs  []VMSpec `json:"vms"`
}

// Server is the control plane. All function hooks are invoked inside
// Exec; hooks left nil disable their endpoints (501).
type Server struct {
	// Exec serializes a handler's work with the control loop and the
	// simulator (e.g. by holding the mutex the sim driver holds while
	// advancing virtual time). Required; nil runs handlers unserialized
	// — acceptable only in single-threaded tests.
	Exec func(func())

	// Now returns the current virtual time.
	Now func() float64
	// Config returns the live configuration (a snapshot is taken under
	// Exec before rendering).
	Config func() *vjob.Configuration
	// Stats returns the loop telemetry.
	Stats func() core.LoopStats
	// Switches returns how many context switches executed so far.
	Switches func() int
	// Execution returns the in-flight managed execution, nil when
	// idle.
	Execution func() *drivers.Execution
	// Notify injects one cluster event into the loop.
	Notify func(core.Event)
	// Drains is the node-lifecycle bridge shared with Loop.Drains.
	Drains *core.DrainSet
	// OnDrain and OnUndrain, when non-nil, run after the drain set
	// changed — the host's chance to integrate the simulator's node
	// lifecycle (e.g. SetNodeOnline on undrain). An error rolls the
	// drain-set change back and fails the request.
	OnDrain, OnUndrain func(node string) error
	// Submit and Withdraw manage vjobs at runtime.
	Submit   func(VJobSpec) error
	Withdraw func(name string) error
	// ViolationSeconds returns the integral of capacity violations
	// over virtual time.
	ViolationSeconds func() float64
	// QueueDepth returns the number of vjobs in the submission queue.
	QueueDepth func() int
	// Trace, when non-nil, enables GET /v1/trace and GET /v1/watch
	// and adds the pipeline latency histograms to /metrics. Span-ring
	// reads are lock-free, so trace scrapes skip Exec and never delay
	// the loop.
	Trace *obs.Tracer
	// WatchHeartbeat is the SSE keep-alive period of GET /v1/watch;
	// 0 means 15 seconds.
	WatchHeartbeat time.Duration
	// WatchBuffer is the per-subscriber event queue of GET /v1/watch.
	// A client that falls this far behind is dropped and disconnected
	// rather than ever blocking the loop (cwcs_watch_drops_total
	// counts it). 0 means 256.
	WatchBuffer int
	// Ledger, when non-nil, enables GET /v1/violations and the labeled
	// cwcs_violation_seconds_total{vjob,kind} / {node,kind} and
	// cwcs_rule_breach_seconds_total{rule} samples. The ledger carries
	// its own lock, so reads skip Exec and never delay the sim.
	Ledger *monitor.Ledger
	// Solver, when non-nil, enables GET /v1/solver and the
	// cwcs_portfolio_wins_total{strategy} / cwcs_warm_start_* metric
	// families. Self-locked like the ledger; reads skip Exec.
	Solver *core.SolverTelemetry
	// StateInterval is the poll period of the GET /v1/watch/state
	// producer (real time — deltas are observed under Exec at this
	// cadence, not per sim event). 0 means 1 second.
	StateInterval time.Duration
	// StateBuffer is the per-subscriber delta queue of GET
	// /v1/watch/state. A client that falls this far behind gets a
	// terminal dropped event instead of ever blocking the producer
	// (cwcs_state_watch_drops_total counts it). 0 means 16.
	StateBuffer int

	// stateDrops counts watch/state subscribers disconnected for
	// falling behind.
	stateDrops atomic.Uint64
}

// Handler returns the routed control plane.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/config", s.handleConfig)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/plan", s.handlePlan)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/watch/state", s.handleWatchState)
	mux.HandleFunc("GET /v1/violations", s.handleViolations)
	mux.HandleFunc("GET /v1/solver", s.handleSolver)
	mux.HandleFunc("GET /v1/nodes", s.handleNodes)
	mux.HandleFunc("GET /v1/nodes/{id}", s.handleNode)
	mux.HandleFunc("POST /v1/nodes/{id}/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/nodes/{id}/undrain", s.handleUndrain)
	mux.HandleFunc("POST /v1/events", s.handleEvents)
	mux.HandleFunc("POST /v1/vjobs", s.handleSubmit)
	mux.HandleFunc("DELETE /v1/vjobs/{name}", s.handleWithdraw)
	return mux
}

// exec runs fn inside the host's serializer.
func (s *Server) exec(fn func()) {
	if s.Exec != nil {
		s.Exec(fn)
		return
	}
	fn()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no configuration source")
		return
	}
	var snap *vjob.Configuration
	s.exec(func() { snap = s.Config().Clone() })
	writeJSON(w, http.StatusOK, snap)
}

// statsJSON is the body of GET /v1/stats.
type statsJSON struct {
	Now              float64        `json:"now"`
	Loop             core.LoopStats `json:"loop"`
	Switches         int            `json:"switches"`
	ViolationSeconds float64        `json:"violationSeconds"`
	QueueDepth       int            `json:"queueDepth"`
	DrainingNodes    []string       `json:"drainingNodes,omitempty"`
	Executing        bool           `json:"executing"`
}

// snapshot gathers the telemetry every read endpoint shares.
func (s *Server) snapshot() statsJSON {
	var out statsJSON
	s.exec(func() {
		if s.Now != nil {
			out.Now = s.Now()
		}
		if s.Stats != nil {
			out.Loop = s.Stats()
		}
		if s.Switches != nil {
			out.Switches = s.Switches()
		}
		if s.ViolationSeconds != nil {
			out.ViolationSeconds = s.ViolationSeconds()
		}
		if s.QueueDepth != nil {
			out.QueueDepth = s.QueueDepth()
		}
		out.DrainingNodes = s.Drains.Nodes()
		if s.Execution != nil {
			if ex := s.Execution(); ex != nil && !ex.Finished() {
				out.Executing = true
			}
		}
	})
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.Stats == nil {
		writeError(w, http.StatusNotImplemented, "no stats source")
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot())
}

// actionJSON is one action's status in GET /v1/plan.
type actionJSON struct {
	Pool    int     `json:"pool"`
	Action  string  `json:"action"`
	VM      string  `json:"vm"`
	Phase   string  `json:"phase"`
	Err     string  `json:"error,omitempty"`
	Started float64 `json:"started,omitempty"`
	Ended   float64 `json:"ended,omitempty"`
}

// planJSON is the body of GET /v1/plan.
type planJSON struct {
	Executing bool         `json:"executing"`
	Cost      int          `json:"cost,omitempty"`
	Pools     int          `json:"pools,omitempty"`
	Actions   []actionJSON `json:"actions,omitempty"`
}

// planLocked renders the in-flight plan's status. Callers hold Exec;
// it backs both GET /v1/plan and the watch/state plan stream.
func (s *Server) planLocked() planJSON {
	var out planJSON
	ex := s.Execution()
	if ex == nil {
		return out
	}
	p := ex.Plan()
	out.Executing = !ex.Finished()
	out.Cost = p.Cost()
	out.Pools = len(p.Pools)
	for _, st := range ex.Status() {
		out.Actions = append(out.Actions, actionJSON{
			Pool:    st.Pool,
			Action:  st.Action,
			VM:      st.VM,
			Phase:   st.Phase.String(),
			Err:     st.Err,
			Started: st.Started,
			Ended:   st.Ended,
		})
	}
	return out
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if s.Execution == nil {
		writeError(w, http.StatusNotImplemented, "no execution source")
		return
	}
	var out planJSON
	s.exec(func() { out = s.planLocked() })
	writeJSON(w, http.StatusOK, out)
}

// nodeJSON is one node's status in GET /v1/nodes. CPU/memory keep
// their historical flat fields; Resources carries every dimension with
// non-zero capacity or usage — the authoritative per-dimension view.
type nodeJSON struct {
	Name       string                  `json:"name"`
	CPU        int                     `json:"cpu"`
	Memory     int                     `json:"memory"`
	UsedCPU    int                     `json:"usedCPU"`
	UsedMemory int                     `json:"usedMemory"`
	Resources  map[string]resourceJSON `json:"resources,omitempty"`
	Running    []string                `json:"running,omitempty"`
	Sleeping   []string                `json:"sleeping,omitempty"`
	Draining   bool                    `json:"draining"`
	// Evacuated is true for a draining node that holds nothing
	// anymore: safe to take offline. A node still storing suspended
	// images stays un-evacuated — the optimizer cannot relocate an
	// image; resume (or withdraw) the owning vjobs to free it.
	Evacuated bool `json:"evacuated"`
	// Offline is true for a draining node absent from the
	// configuration (already taken down).
	Offline bool `json:"offline"`
	// Reason explains a draining, not-yet-evacuated node:
	// "in-progress" while running guests remain (the loop is still
	// migrating them away), "pinned-by-image" when only suspended
	// images remain — the optimizer cannot relocate an image, so the
	// node sits un-evacuated until the owning vjobs resume or are
	// withdrawn. Empty otherwise.
	Reason string `json:"reason,omitempty"`
	// PinnedBy lists the vjobs owning the pinning images when Reason
	// is "pinned-by-image" — the operator's resume/withdraw targets.
	PinnedBy []string `json:"pinnedBy,omitempty"`
}

// Reason values of a draining, not-yet-evacuated node.
const (
	ReasonInProgress    = "in-progress"
	ReasonPinnedByImage = "pinned-by-image"
)

// resourceJSON is one dimension's used/capacity pair.
type resourceJSON struct {
	Used     int `json:"used"`
	Capacity int `json:"capacity"`
}

// nodeLoad is the per-node aggregation of one walk over the VM set.
type nodeLoad struct {
	used              resources.Vector
	running, sleeping []string
}

// loadByNode groups usage and guests by hosting node in one O(VMs)
// pass — per-node UsedCPU/RunningOn calls each rescan the whole VM
// set, which would make the node endpoints O(nodes x VMs) inside the
// Exec critical section.
func loadByNode(cfg *vjob.Configuration) map[string]*nodeLoad {
	out := make(map[string]*nodeLoad)
	get := func(node string) *nodeLoad {
		ld := out[node]
		if ld == nil {
			ld = &nodeLoad{}
			out[node] = ld
		}
		return ld
	}
	for _, v := range cfg.VMs() {
		switch cfg.StateOf(v.Name) {
		case vjob.Running:
			ld := get(cfg.HostOf(v.Name))
			ld.used = ld.used.Add(v.Demand)
			ld.running = append(ld.running, v.Name)
		case vjob.Sleeping:
			ld := get(cfg.ImageHostOf(v.Name))
			ld.sleeping = append(ld.sleeping, v.Name)
		}
	}
	return out
}

// nodeStatus renders one node from the precomputed load map; ok is
// false when the name is neither a configured node nor a draining
// (offline) one. Callers hold Exec.
func (s *Server) nodeStatus(cfg *vjob.Configuration, load map[string]*nodeLoad, name string) (nodeJSON, bool) {
	out := nodeJSON{Name: name, Draining: s.Drains.IsDrained(name)}
	n := cfg.Node(name)
	if n == nil {
		if !out.Draining {
			return out, false
		}
		out.Offline = true
		out.Evacuated = true
		return out, true
	}
	out.CPU, out.Memory = n.CPU(), n.Memory()
	var used resources.Vector
	if ld := load[name]; ld != nil {
		used = ld.used
		out.Running, out.Sleeping = ld.running, ld.sleeping
	}
	out.UsedCPU = used.Get(resources.CPU)
	out.UsedMemory = used.Get(resources.Memory)
	for _, k := range resources.Kinds() {
		if n.Capacity.Get(k) == 0 && used.Get(k) == 0 {
			continue
		}
		if out.Resources == nil {
			out.Resources = make(map[string]resourceJSON)
		}
		out.Resources[k.String()] = resourceJSON{Used: used.Get(k), Capacity: n.Capacity.Get(k)}
	}
	out.Evacuated = out.Draining && len(out.Running) == 0 && len(out.Sleeping) == 0
	if out.Draining && !out.Evacuated {
		if len(out.Running) > 0 {
			out.Reason = ReasonInProgress
		} else {
			out.Reason = ReasonPinnedByImage
			out.PinnedBy = pinningVJobs(cfg, out.Sleeping)
		}
	}
	return out, true
}

// pinningVJobs resolves the sleeping images to their owning vjobs,
// deduplicated and sorted. Standalone VMs (no vjob) report their own
// name.
func pinningVJobs(cfg *vjob.Configuration, sleeping []string) []string {
	seen := make(map[string]bool, len(sleeping))
	var out []string
	for _, name := range sleeping {
		owner := name
		if v := cfg.VM(name); v != nil && v.VJob != "" {
			owner = v.VJob
		}
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	sort.Strings(out)
	return out
}

// nodeListLocked renders every node's status, name-sorted, including
// draining nodes already taken offline. Callers hold Exec; it backs
// both GET /v1/nodes and the watch/state nodes stream, so a stream
// resync converges to exactly what a poll would report.
func (s *Server) nodeListLocked() []nodeJSON {
	cfg := s.Config()
	load := loadByNode(cfg)
	var out []nodeJSON
	seen := make(map[string]bool)
	for _, n := range cfg.Nodes() {
		st, _ := s.nodeStatus(cfg, load, n.Name)
		out = append(out, st)
		seen[n.Name] = true
	}
	// Draining nodes already taken offline are still operator
	// state: list them too.
	for _, name := range s.Drains.Nodes() {
		if !seen[name] {
			st, _ := s.nodeStatus(cfg, load, name)
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	if s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no configuration source")
		return
	}
	var out []nodeJSON
	s.exec(func() { out = s.nodeListLocked() })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	if s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no configuration source")
		return
	}
	id := r.PathValue("id")
	var st nodeJSON
	var ok bool
	s.exec(func() {
		cfg := s.Config()
		st, ok = s.nodeStatus(cfg, loadByNode(cfg), id)
	})
	if !ok {
		writeError(w, http.StatusNotFound, "unknown node %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if s.Drains == nil || s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no drain bridge")
		return
	}
	id := r.PathValue("id")
	var st nodeJSON
	var ok bool
	var hookErr error
	s.exec(func() {
		cfg := s.Config()
		if cfg.Node(id) == nil && !s.Drains.IsDrained(id) {
			ok = false
			return
		}
		ok = true
		if s.Drains.Drain(id) {
			if s.OnDrain != nil {
				if hookErr = s.OnDrain(id); hookErr != nil {
					s.Drains.Undrain(id)
					return
				}
			}
			if s.Notify != nil {
				ev := core.Event{Kind: core.NodeDown, At: now(s), Nodes: []string{id}}
				for _, v := range cfg.RunningOn(id) {
					ev.VMs = append(ev.VMs, v.Name)
				}
				s.Notify(ev)
			}
		}
		st, _ = s.nodeStatus(cfg, loadByNode(cfg), id)
	})
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "unknown node %q", id)
	case hookErr != nil:
		writeError(w, http.StatusConflict, "drain %s: %v", id, hookErr)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleUndrain(w http.ResponseWriter, r *http.Request) {
	if s.Drains == nil || s.Config == nil {
		writeError(w, http.StatusNotImplemented, "no drain bridge")
		return
	}
	id := r.PathValue("id")
	var st nodeJSON
	var ok bool
	var hookErr error
	s.exec(func() {
		cfg := s.Config()
		if cfg.Node(id) == nil && !s.Drains.IsDrained(id) {
			ok = false
			return
		}
		ok = true
		if s.Drains.Undrain(id) {
			if s.OnUndrain != nil {
				if hookErr = s.OnUndrain(id); hookErr != nil {
					s.Drains.Drain(id)
					return
				}
			}
			if s.Notify != nil {
				s.Notify(core.Event{Kind: core.NodeUp, At: now(s), Nodes: []string{id}})
			}
		}
		// Re-observe: OnUndrain may have brought the node back online.
		fresh := s.Config()
		st, _ = s.nodeStatus(fresh, loadByNode(fresh), id)
	})
	switch {
	case !ok:
		writeError(w, http.StatusNotFound, "unknown node %q", id)
	case hookErr != nil:
		writeError(w, http.StatusConflict, "undrain %s: %v", id, hookErr)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

func now(s *Server) float64 {
	if s.Now != nil {
		return s.Now()
	}
	return 0
}

// eventJSON is the wire form of one injected event.
type eventJSON struct {
	Kind  string   `json:"kind"`
	Nodes []string `json:"nodes,omitempty"`
	VMs   []string `json:"vms,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.Notify == nil {
		writeError(w, http.StatusNotImplemented, "no event sink")
		return
	}
	var batch []eventJSON
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, "events: expected a JSON array of {kind,nodes,vms}: %v", err)
		return
	}
	events := make([]core.Event, 0, len(batch))
	for i, ej := range batch {
		kind, err := core.ParseEventKind(ej.Kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, "events[%d]: %v", i, err)
			return
		}
		if kind == core.ActionFailure {
			// Failures are born inside the executing plan; an external
			// injection could request a repair with no failed action.
			writeError(w, http.StatusBadRequest, "events[%d]: %s events cannot be injected", i, ej.Kind)
			return
		}
		events = append(events, core.Event{Kind: kind, Nodes: ej.Nodes, VMs: ej.VMs})
	}
	s.exec(func() {
		at := now(s)
		for _, ev := range events {
			ev.At = at
			s.Notify(ev)
		}
	})
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": len(events)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Submit == nil {
		writeError(w, http.StatusNotImplemented, "no vjob submitter")
		return
	}
	var spec VJobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "vjobs: %v", err)
		return
	}
	if spec.Name == "" || len(spec.VMs) == 0 {
		writeError(w, http.StatusBadRequest, "vjobs: a vjob needs a name and at least one VM")
		return
	}
	seen := make(map[string]bool, len(spec.VMs))
	for _, v := range spec.VMs {
		if v.Name == "" {
			writeError(w, http.StatusBadRequest, "vjobs: VM with empty name")
			return
		}
		if seen[v.Name] {
			writeError(w, http.StatusBadRequest, "vjobs: duplicate VM name %s", v.Name)
			return
		}
		seen[v.Name] = true
		if v.CPU < 0 || v.Memory < 0 {
			writeError(w, http.StatusBadRequest, "vjobs: VM %s has negative demand", v.Name)
			return
		}
		for i, p := range v.Phases {
			if p.CPU < 0 || p.Seconds < 0 {
				writeError(w, http.StatusBadRequest, "vjobs: VM %s phase %d has negative cpu or seconds", v.Name, i)
				return
			}
		}
	}
	var err error
	s.exec(func() { err = s.Submit(spec) })
	if err != nil {
		writeError(w, http.StatusConflict, "vjobs: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"submitted": spec.Name})
}

func (s *Server) handleWithdraw(w http.ResponseWriter, r *http.Request) {
	if s.Withdraw == nil {
		writeError(w, http.StatusNotImplemented, "no vjob withdrawer")
		return
	}
	name := r.PathValue("name")
	var err error
	s.exec(func() { err = s.Withdraw(name) })
	if err != nil {
		writeError(w, http.StatusConflict, "vjobs: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"withdrawn": name})
}
