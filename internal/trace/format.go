package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cwcs/internal/resources"
)

// FormatVersion is the trace file format this package reads and
// writes. A trace file is JSON Lines: one Record per line, each line
// self-describing with `"v": 1`, so a stream can be cut or
// concatenated at any line boundary and still identify itself.
//
// The format is shaped like the public Azure / Google cluster traces
// reduced to what the reconfiguration loop consumes: a VM arrives
// with a per-dimension demand, its demand changes over time, and it
// departs. Three events, in virtual seconds, sorted by time:
//
//	{"v":1,"at":0,"event":"arrive","vm":"web-00","vjob":"web","demand":{"cpu":1,"memory":512}}
//	{"v":1,"at":300,"event":"load","vm":"web-00","demand":{"cpu":2,"memory":512}}
//	{"v":1,"at":900,"event":"depart","vm":"web-00"}
//
// Demand keys are the registered resource kinds (resources.Kinds:
// cpu, memory, net, disk); a key absent from a load record means that
// dimension drops to zero, exactly like a phase change. Decode
// validates the stream strictly — unknown fields, unknown kinds,
// negative demands, time going backwards, a load or depart for a VM
// never seen or already departed are all errors with line numbers —
// and never panics on malformed input (FuzzTraceDecode pins this).
const FormatVersion = 1

// Trace event names.
const (
	// EventArrive introduces a VM: vjob and demand are required.
	EventArrive = "arrive"
	// EventLoad changes a live VM's demand: demand is required.
	EventLoad = "load"
	// EventDepart retires a live VM: demand must be absent.
	EventDepart = "depart"
)

// Record is one line of a trace file.
type Record struct {
	// V is the format version (FormatVersion).
	V int `json:"v"`
	// At is the event instant in virtual seconds.
	At float64 `json:"at"`
	// Event is one of arrive, load, depart.
	Event string `json:"event"`
	// VM names the machine the event concerns.
	VM string `json:"vm"`
	// VJob is the job the VM belongs to (arrive only).
	VJob string `json:"vjob,omitempty"`
	// Demand is the per-dimension demand in force from At on, keyed by
	// resource kind name (arrive and load only).
	Demand map[string]int `json:"demand,omitempty"`
}

// Vector converts the record's demand map to a resource vector. It
// assumes a Decode-validated record; unknown kinds are an error.
func (r Record) Vector() (resources.Vector, error) {
	var v resources.Vector
	for name, x := range r.Demand {
		k, err := resources.ParseKind(name)
		if err != nil {
			return v, err
		}
		v.Set(k, x)
	}
	return v, nil
}

// Decode reads a JSONL trace stream and returns its records, strictly
// validated: versioned lines, known events, monotone non-decreasing
// time, demands on registered kinds only, and a consistent VM life
// cycle (arrive before load/depart, no double arrive or depart).
// Blank lines and #-comment lines are skipped. Errors carry the
// 1-based line number. Decode never panics, whatever the input.
func Decode(r io.Reader) ([]Record, error) {
	var recs []Record
	live := map[string]bool{} // arrived and not yet departed
	gone := map[string]bool{} // departed
	prev := 0.0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after record", line)
		}
		if err := validate(rec, prev, live, gone); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		prev = rec.At
		switch rec.Event {
		case EventArrive:
			live[rec.VM] = true
		case EventDepart:
			delete(live, rec.VM)
			gone[rec.VM] = true
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %v", line, err)
	}
	return recs, nil
}

func validate(rec Record, prev float64, live, gone map[string]bool) error {
	if rec.V != FormatVersion {
		return fmt.Errorf("version %d, want %d", rec.V, FormatVersion)
	}
	if rec.VM == "" {
		return fmt.Errorf("missing vm")
	}
	if rec.At < 0 {
		return fmt.Errorf("negative time %v", rec.At)
	}
	if rec.At < prev {
		return fmt.Errorf("time goes backwards (%v after %v)", rec.At, prev)
	}
	if rec.At != rec.At { // NaN
		return fmt.Errorf("time is NaN")
	}
	for name, x := range rec.Demand {
		if _, err := resources.ParseKind(name); err != nil {
			return err
		}
		if x < 0 {
			return fmt.Errorf("negative %s demand %d for %s", name, x, rec.VM)
		}
	}
	switch rec.Event {
	case EventArrive:
		if live[rec.VM] || gone[rec.VM] {
			return fmt.Errorf("vm %s arrives twice", rec.VM)
		}
		if rec.VJob == "" {
			return fmt.Errorf("arrive without vjob for %s", rec.VM)
		}
		if len(rec.Demand) == 0 {
			return fmt.Errorf("arrive without demand for %s", rec.VM)
		}
	case EventLoad:
		if !live[rec.VM] {
			return fmt.Errorf("load for unknown or departed vm %s", rec.VM)
		}
		if len(rec.Demand) == 0 {
			return fmt.Errorf("load without demand for %s", rec.VM)
		}
	case EventDepart:
		if !live[rec.VM] {
			return fmt.Errorf("depart for unknown or departed vm %s", rec.VM)
		}
		if len(rec.Demand) != 0 {
			return fmt.Errorf("depart with demand for %s", rec.VM)
		}
	default:
		return fmt.Errorf("unknown event %q", rec.Event)
	}
	return nil
}

// Encode writes records as a JSONL trace stream, one line each,
// stamping FormatVersion. It does not re-validate: encode what Decode
// accepted (or what a converter built) and the stream round-trips.
func Encode(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		rec.V = FormatVersion
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("trace: %v", err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// SortRecords orders records by (time, arrive-before-load-before-
// depart, vm) — the canonical order converters use before encoding so
// a VM's arrival always precedes its load changes and departure at
// equal timestamps.
func SortRecords(recs []Record) {
	rank := map[string]int{EventArrive: 0, EventLoad: 1, EventDepart: 2}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].At != recs[j].At {
			return recs[i].At < recs[j].At
		}
		if rank[recs[i].Event] != rank[recs[j].Event] {
			return rank[recs[i].Event] < rank[recs[j].Event]
		}
		return recs[i].VM < recs[j].VM
	})
}
