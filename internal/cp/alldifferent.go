package cp

import "fmt"

// AllDifferent constrains every pair of variables to take distinct
// values. Propagation combines value elimination (a bound variable's
// value leaves every other domain) with a pigeonhole test (fewer
// distinct candidate values than variables is a wipe-out) and Hall
// interval detection on small domains: if k variables share a union of
// exactly k candidate values, those values are removed from every
// other domain.
type AllDifferent struct {
	Items []*IntVar
}

// Vars returns the constrained variables.
func (c *AllDifferent) Vars() []*IntVar { return c.Items }

// CloneFor copies the constraint over the remapped variables.
func (c *AllDifferent) CloneFor(remap func(*IntVar) *IntVar) Constraint {
	items := make([]*IntVar, len(c.Items))
	for i, v := range c.Items {
		items[i] = remap(v)
	}
	return &AllDifferent{Items: items}
}

// Propagate enforces pairwise difference.
func (c *AllDifferent) Propagate(s *Solver) error {
	// Value elimination from bound variables, to fixpoint: removing a
	// value can bind another variable.
	for changed := true; changed; {
		changed = false
		for _, v := range c.Items {
			if !v.Bound() {
				continue
			}
			val := v.Value()
			for _, w := range c.Items {
				if w == v || !w.Contains(val) {
					continue
				}
				if w.Bound() {
					return fmt.Errorf("%w: alldifferent: %s and %s both take %d", ErrFailed, v.Name(), w.Name(), val)
				}
				if err := s.RemoveValue(w, val); err != nil {
					return err
				}
				changed = true
			}
		}
	}
	// Pigeonhole: the union of candidate values must cover the items.
	union := map[int]bool{}
	for _, v := range c.Items {
		for _, val := range v.Values() {
			union[val] = true
		}
	}
	if len(union) < len(c.Items) {
		return fmt.Errorf("%w: alldifferent: %d variables share %d values", ErrFailed, len(c.Items), len(union))
	}
	// Hall sets over unbound variables with small domains: any group
	// of k variables whose domains' union has size k consumes those
	// values entirely.
	return c.hallSets(s)
}

// hallSets runs a light-weight Hall-interval detection: for each
// variable with a small domain, collect the variables whose domains
// are subsets of it; if they saturate the domain, prune it elsewhere.
func (c *AllDifferent) hallSets(s *Solver) error {
	for _, pivot := range c.Items {
		if pivot.Size() > 4 { // small domains only: keep it cheap
			continue
		}
		pv := pivot.Values()
		inHall := 0
		for _, v := range c.Items {
			if subsetOf(v, pv) {
				inHall++
			}
		}
		if inHall < len(pv) {
			continue
		}
		if inHall > len(pv) {
			return fmt.Errorf("%w: alldifferent: %d variables confined to %d values", ErrFailed, inHall, len(pv))
		}
		for _, v := range c.Items {
			if subsetOf(v, pv) {
				continue
			}
			for _, val := range pv {
				if v.Contains(val) {
					if err := s.RemoveValue(v, val); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// subsetOf reports whether v's domain is included in the value list.
func subsetOf(v *IntVar, values []int) bool {
	if v.Size() > len(values) {
		return false
	}
	for _, val := range v.Values() {
		found := false
		for _, w := range values {
			if w == val {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
