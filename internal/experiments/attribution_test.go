package experiments

import (
	"testing"
	"time"
)

// TestAttributionConservation is the conservation law of the ledger on
// a real workload: over a seeded 500-node churn run, the per-vjob
// violation-seconds sum to the aggregate integral EXACTLY (bitwise —
// Total is defined as that fold), and the node-grouped view carries
// the same per-dimension mass up to float fold-order. Run under -race
// in the full suite, this also exercises the ledger's locking against
// the live simulation.
func TestAttributionConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 500-node churn cell")
	}
	opts := DefaultChurnOptions()
	// Keep the 500-node population but trim the horizon and per-solve
	// budget so the conservation check stays a test, not a study.
	opts.Horizon = 900
	opts.ArrivalStop = 200
	opts.Timeout = 50 * time.Millisecond
	opts.Workers = 1
	r := RunChurn(true, opts)

	led := r.Ledger
	if led == nil {
		t.Fatal("churn result carries no ledger")
	}
	if r.ViolationSeconds <= 0 {
		t.Fatal("scenario produced no violation exposure to conserve")
	}
	if got := led.Total(); got != r.ViolationSeconds {
		t.Fatalf("ledger total %v != published integral %v", got, r.ViolationSeconds)
	}

	// Exact conservation: the per-vjob rows fold to the integral
	// bitwise, so no violation-second is unattributed or double-counted.
	sum := 0.0
	for _, e := range led.VJobTotals() {
		sum += e.Seconds
	}
	if sum != r.ViolationSeconds {
		t.Fatalf("sum(per-vjob) = %v != WatchViolationSeconds integral %v (must be bitwise equal)",
			sum, r.ViolationSeconds)
	}

	// Cross-view agreement: regrouping the same atoms by node must
	// preserve per-dimension mass (fold order differs, so epsilon).
	byKindFromVJobs := map[string]float64{}
	for _, e := range led.VJobKinds() {
		byKindFromVJobs[e.Kind] += e.Seconds
	}
	byKindFromNodes := map[string]float64{}
	for _, e := range led.NodeKinds() {
		byKindFromNodes[e.Kind] += e.Seconds
	}
	if len(byKindFromVJobs) != len(byKindFromNodes) {
		t.Fatalf("views disagree on charged dimensions: %v vs %v", byKindFromVJobs, byKindFromNodes)
	}
	for k, v := range byKindFromVJobs {
		if d := v - byKindFromNodes[k]; d > 1e-9 || d < -1e-9 {
			t.Errorf("dimension %s: vjob view %v vs node view %v", k, v, byKindFromNodes[k])
		}
	}

	// The ranked views expose the same mass as the ledger they rank.
	topSum := 0.0
	for _, s := range led.TopVJobs(0) {
		topSum += s.Seconds
	}
	if d := topSum - r.ViolationSeconds; d > 1e-9 || d < -1e-9 {
		t.Errorf("TopVJobs mass %v drifted from integral %v", topSum, r.ViolationSeconds)
	}
	if r.TopVJob == "" || r.TopVJobSeconds <= 0 || r.TopNode == "" || r.TopNodeSeconds <= 0 {
		t.Errorf("study columns empty on a violating run: %q/%.1f %q/%.1f",
			r.TopVJob, r.TopVJobSeconds, r.TopNode, r.TopNodeSeconds)
	}
	t.Logf("conserved %.1f violation-seconds across %d atoms; top vjob %s=%.1fs, top node %s=%.1fs",
		r.ViolationSeconds, len(led.Atoms()), r.TopVJob, r.TopVJobSeconds, r.TopNode, r.TopNodeSeconds)
}
