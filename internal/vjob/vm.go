package vjob

import (
	"fmt"

	"cwcs/internal/resources"
)

// VM is a virtual machine. Demand is what the VM currently asks for,
// per resource dimension: CPU in processing units (1 while the
// embedded task computes, 0 otherwise), memory in MiB — which also
// drives the cost of the actions that manipulate the VM (Table 1 of
// the paper) — plus any extra registered dimension (network bandwidth,
// disk I/O). The CPUDemand/MemoryDemand accessors keep the paper's 2-D
// call sites readable.
type VM struct {
	// Name identifies the VM (e.g. "vjob2-vm4"). Names must be unique
	// within a configuration.
	Name string
	// VJob is the name of the virtualized job this VM belongs to, or
	// empty for a standalone VM.
	VJob string
	// Demand is the current per-dimension resource demand.
	Demand resources.Vector
}

// NewVM returns a VM owned by the named vjob, demanding the paper's
// two dimensions. It panics on negative demands.
func NewVM(name, job string, cpu, memory int) *VM {
	return NewVMRes(name, job, resources.New(cpu, memory))
}

// NewVMRes returns a VM with a full demand vector. It panics on
// negative demands, since such a VM cannot exist.
func NewVMRes(name, job string, demand resources.Vector) *VM {
	if demand.AnyNegative() {
		panic(fmt.Sprintf("vjob: VM %s with negative demand (%s)", name, demand))
	}
	return &VM{Name: name, VJob: job, Demand: demand}
}

// CPUDemand returns the current processing-unit demand.
func (v *VM) CPUDemand() int { return v.Demand.Get(resources.CPU) }

// MemoryDemand returns the current memory demand in MiB.
func (v *VM) MemoryDemand() int { return v.Demand.Get(resources.Memory) }

// SetCPUDemand updates the processing-unit demand (the simulator's
// phase advances go through here).
func (v *VM) SetCPUDemand(cpu int) { v.Demand.Set(resources.CPU, cpu) }

// SetMemoryDemand updates the memory demand in MiB.
func (v *VM) SetMemoryDemand(mem int) { v.Demand.Set(resources.Memory, mem) }

// String returns a compact human-readable description of the VM.
func (v *VM) String() string {
	return fmt.Sprintf("%s[%s]", v.Name, v.Demand)
}
